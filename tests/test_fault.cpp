// Fault-injection layer (src/fault): plan parsing and validation, partition
// symmetry, crash–recover semantics, duplication/reordering gating, the
// no-perturbation guarantee for inactive plans, cross-thread determinism of
// FaultPlan runs, and the bootstrap per-exchange timeout wiring.
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "fault/scenario_config.hpp"
#include "sim/engine.hpp"

namespace bsvc {
namespace {

// --- plan parsing --------------------------------------------------------

TEST(FaultPlanParse, FullTextRoundTrip) {
  const char* text = R"(# a hostile afternoon
seed 99
partition 1000..2000 cut=512
partition 3000..4000 mod=4
loss 0..5000 p=0.25
loss 100..200 p=1 from=7 to=9   # asymmetric: only 7 -> 9
delay 500..600 add=250
pareto 700..800 scale=80 alpha=1.5 cap=4000
dup 0..1000 p=0.05 jitter=50
reorder 0..1000 p=0.2 delay=300
crash 100..900 addr=3
crash 200..400 frac=0.25
)";
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_plan(text, plan, error)) << error;
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.partitions.size(), 2u);
  EXPECT_EQ(plan.partitions[0].kind, PartitionSpec::Kind::Cut);
  EXPECT_EQ(plan.partitions[0].value, 512u);
  EXPECT_EQ(plan.partitions[0].window.start, 1000u);
  EXPECT_EQ(plan.partitions[0].window.end, 2000u);
  EXPECT_EQ(plan.partitions[1].kind, PartitionSpec::Kind::Modulo);
  EXPECT_EQ(plan.partitions[1].value, 4u);
  ASSERT_EQ(plan.link_loss.size(), 2u);
  EXPECT_EQ(plan.link_loss[0].from, kNullAddress);
  EXPECT_EQ(plan.link_loss[1].from, 7u);
  EXPECT_EQ(plan.link_loss[1].to, 9u);
  EXPECT_DOUBLE_EQ(plan.link_loss[1].drop_probability, 1.0);
  ASSERT_EQ(plan.latency.size(), 2u);
  EXPECT_EQ(plan.latency[0].mode, LatencySpec::Mode::Spike);
  EXPECT_EQ(plan.latency[0].add, 250u);
  EXPECT_EQ(plan.latency[1].mode, LatencySpec::Mode::Pareto);
  EXPECT_DOUBLE_EQ(plan.latency[1].scale, 80.0);
  EXPECT_DOUBLE_EQ(plan.latency[1].alpha, 1.5);
  EXPECT_EQ(plan.latency[1].effective_cap(), 4000u);
  ASSERT_EQ(plan.duplicates.size(), 1u);
  EXPECT_EQ(plan.duplicates[0].jitter, 50u);
  ASSERT_EQ(plan.reorders.size(), 1u);
  EXPECT_EQ(plan.reorders[0].max_delay, 300u);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].addr, 3u);
  EXPECT_DOUBLE_EQ(plan.crashes[1].fraction, 0.25);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, ErrorsCarryLineNumbers) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(parse_fault_plan("seed 1\nbogus 0..10 p=1\n", plan, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_plan("loss 10 p=0.5\n", plan, error));
  EXPECT_NE(error.find("window"), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_plan("loss 0..10\n", plan, error));
  EXPECT_NE(error.find("p="), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_plan("crash 0..10 addr=1 frac=0.5\n", plan, error));
  EXPECT_NE(error.find("exactly one"), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_plan("dup 0..10 p=abc\n", plan, error));
  EXPECT_NE(error.find("number"), std::string::npos) << error;
}

TEST(FaultPlanValidate, RejectsMalformedSpecs) {
  FaultPlan plan;
  plan.link_loss.push_back({{10, 10}, kNullAddress, kNullAddress, 0.5});
  EXPECT_NE(plan.validate().find("empty"), std::string::npos);
  plan.link_loss.clear();

  plan.link_loss.push_back({{0, 10}, kNullAddress, kNullAddress, 1.5});
  EXPECT_NE(plan.validate().find("outside [0, 1]"), std::string::npos);
  plan.link_loss.clear();

  PartitionSpec mod;
  mod.window = {0, 10};
  mod.kind = PartitionSpec::Kind::Modulo;
  mod.value = 1;
  plan.partitions.push_back(mod);
  EXPECT_NE(plan.validate().find("at least 2"), std::string::npos);
  plan.partitions.clear();

  LatencySpec pareto;
  pareto.window = {0, 10};
  pareto.mode = LatencySpec::Mode::Pareto;
  pareto.scale = 0.0;
  plan.latency.push_back(pareto);
  EXPECT_NE(plan.validate().find("scale"), std::string::npos);
  plan.latency.clear();

  plan.crashes.push_back({{0, 10}, kNullAddress, 1.5});
  EXPECT_NE(plan.validate().find("(0, 1]"), std::string::npos);
  plan.crashes.clear();

  EXPECT_EQ(plan.validate(), "");
  EXPECT_TRUE(plan.empty());
}

// --- engine-level behavior ------------------------------------------------

/// Minimal payload for engine-level fault tests.
class IntPayload final : public Payload {
 public:
  explicit IntPayload(int v) : value(v) {}
  std::size_t wire_bytes() const override { return 4; }
  const char* type_name() const override { return "int"; }
  int value;
};

/// Records deliveries and timer fires.
class Recorder final : public Protocol {
 public:
  struct Event {
    SimTime time;
    int value;  // message value, or -1 for a timer
  };
  void on_start(Context&) override {}
  void on_timer(Context& ctx, std::uint64_t) override {
    events.push_back({ctx.now(), -1});
  }
  void on_message(Context& ctx, Address, const Payload& p) override {
    if (const auto* ip = dynamic_cast<const IntPayload*>(&p)) {  // test double
      events.push_back({ctx.now(), ip->value});
    }
  }
  std::vector<Event> events;
};

/// N-node engine with zero base drop and fixed latency 10.
struct FaultRig {
  explicit FaultRig(std::size_t n, std::uint64_t seed = 1)
      : engine(seed, TransportConfig{0.0, 10, 10}) {
    for (std::size_t i = 0; i < n; ++i) {
      const Address a = engine.add_node(100 + i);
      engine.attach(a, std::make_unique<Recorder>());
      engine.start_node(a);
    }
    engine.run_until(1);  // flush the starts
  }
  Recorder& at(Address a) { return dynamic_cast<Recorder&>(engine.protocol(a, 0)); }  // test-only checked cast
  Engine engine;
};

TEST(FaultInjection, PartitionBlocksBothDirectionsAndHeals) {
  FaultRig rig(4);
  FaultPlan plan;
  PartitionSpec cut;
  cut.window = {100, 200};
  cut.kind = PartitionSpec::Kind::Cut;
  cut.value = 2;  // groups {0,1} and {2,3}
  plan.partitions.push_back(cut);
  FaultInjector injector(plan);
  injector.install(rig.engine);

  // Cross-cut sends inside the window, both directions, plus a same-group
  // control; then the same cross-cut pair after the heal.
  rig.engine.schedule_call(150 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 2, 0, std::make_unique<IntPayload>(1));  // cross, a -> b
    e.send_message(2, 0, 0, std::make_unique<IntPayload>(2));  // cross, b -> a
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(3));  // same group
  });
  rig.engine.schedule_call(250 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 2, 0, std::make_unique<IntPayload>(4));  // healed
  });
  rig.engine.run_until(1000);

  ASSERT_EQ(rig.at(2).events.size(), 1u);  // only the post-heal message
  EXPECT_EQ(rig.at(2).events[0].value, 4);
  EXPECT_TRUE(rig.at(0).events.empty());  // cross message never arrived
  ASSERT_EQ(rig.at(1).events.size(), 1u);  // same-group unaffected
  EXPECT_EQ(rig.at(1).events[0].value, 3);
  EXPECT_EQ(rig.engine.metrics().counter("fault.partition.dropped").value(), 2u);
  // The gauge flipped up at 100 and back down at 200.
  EXPECT_DOUBLE_EQ(rig.engine.metrics().gauge("fault.partition.active").value(), 0.0);
}

TEST(FaultInjection, CrashRecoverKeepsStateAndDefersTimers) {
  FaultRig rig(2);
  FaultPlan plan;
  plan.crashes.push_back({{100, 300}, 1, 0.0});  // node 1 dark for [100, 300)
  FaultInjector injector(plan);
  injector.install(rig.engine);

  // Delivered before the window; lost during it; delivered after recovery.
  rig.engine.schedule_call(50 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(1));
  });
  rig.engine.schedule_call(150 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(2));
    // A timer due at 180 — deferred to the recovery time, not discarded.
    e.schedule_timer(1, 0, 20, 7);
  });
  rig.engine.schedule_call(400 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(3));
  });
  rig.engine.run_until(1000);

  // Still alive the whole time (crash–recover, not kill), and the recorder's
  // pre-crash state survived.
  EXPECT_TRUE(rig.engine.is_alive(1));
  const auto& ev = rig.at(1).events;
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].value, 1);       // pre-crash delivery retained
  EXPECT_EQ(ev[1].value, -1);      // the deferred timer...
  EXPECT_EQ(ev[1].time, 300u);     // ...fired exactly at recovery
  EXPECT_EQ(ev[2].value, 3);       // post-recovery delivery
  EXPECT_EQ(rig.engine.metrics().counter("fault.dark.dropped").value(), 1u);
  EXPECT_EQ(rig.engine.metrics().counter("fault.dark.deferred").value(), 1u);
  EXPECT_EQ(rig.engine.metrics().counter("fault.crash").value(), 1u);
  EXPECT_EQ(rig.engine.metrics().counter("fault.recover").value(), 1u);
  EXPECT_EQ(rig.engine.metrics().histogram("fault.dark_time", 0, 1, 1).count(), 1u);
}

TEST(FaultInjection, DuplicationOnlyInWindow) {
  FaultRig rig(2);
  FaultPlan plan;
  plan.duplicates.push_back({{100, 200}, 1.0, 0});  // p=1, zero jitter
  FaultInjector injector(plan);
  injector.install(rig.engine);

  rig.engine.schedule_call(150 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(1));
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(2));
  });
  rig.engine.schedule_call(300 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(3));  // window closed
  });
  rig.engine.run_until(1000);

  // values 1 and 2 twice each (original + duplicate), 3 once.
  int ones = 0, twos = 0, threes = 0;
  for (const auto& ev : rig.at(1).events) {
    ones += ev.value == 1;
    twos += ev.value == 2;
    threes += ev.value == 3;
  }
  EXPECT_EQ(ones, 2);
  EXPECT_EQ(twos, 2);
  EXPECT_EQ(threes, 1);
  EXPECT_EQ(rig.engine.traffic().messages_duplicated, 2u);
  EXPECT_EQ(rig.engine.metrics().counter("msg.dup").value(), 2u);
  // Sharing a refcounted payload cannot fail, so the skip tripwire must
  // never fire — a nonzero value means the dup path regressed to dropping
  // scheduled duplicates silently.
  EXPECT_EQ(rig.engine.metrics().counter("msg.dup.skipped").value(), 0u);
}

TEST(FaultInjection, ReorderingOnlyUnderActiveWindow) {
  FaultRig rig(2);
  FaultPlan plan;
  plan.reorders.push_back({{100, 200}, 1.0, 500});
  FaultInjector injector(plan);
  injector.install(rig.engine);

  rig.engine.schedule_call(50 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(1));  // before window
  });
  rig.engine.run_until(99);
  EXPECT_EQ(rig.engine.metrics().counter("msg.reordered").value(), 0u);

  rig.engine.schedule_call(150 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(2));  // inside
  });
  rig.engine.run_until(299);
  EXPECT_EQ(rig.engine.metrics().counter("msg.reordered").value(), 1u);

  rig.engine.schedule_call(300 - rig.engine.now(), [](Engine& e) {
    e.send_message(0, 1, 0, std::make_unique<IntPayload>(3));  // after
  });
  rig.engine.run_until(2000);
  EXPECT_EQ(rig.engine.metrics().counter("msg.reordered").value(), 1u);
  EXPECT_EQ(rig.at(1).events.size(), 3u);  // held back, never lost
}

// --- no-perturbation and determinism -------------------------------------

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t series_hash(const ExperimentResult& r) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t row = 0; row < r.series.rows(); ++row) {
    for (std::size_t col = 0; col < r.series.columns(); ++col) {
      const double v = r.series.at(row, col);
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      h = fnv1a(h, &bits, sizeof(bits));
    }
  }
  return h;
}

TEST(FaultDeterminism, InactivePlanDoesNotPerturbTheRun) {
  // A plan whose windows never open draws nothing from any RNG: the run must
  // be bit-identical to one with no fault model at all.
  ExperimentConfig base;
  base.n = 128;
  base.seed = 9;
  base.max_cycles = 8;
  base.stop_at_convergence = false;
  base.drop_probability = 0.2;

  ExperimentConfig planned = base;
  const SimTime far = 1'000'000'000;
  planned.fault_plan.partitions.push_back({{far, far + 100}, PartitionSpec::Kind::Cut, 64});
  planned.fault_plan.link_loss.push_back({{far, far + 100}, kNullAddress, kNullAddress, 1.0});
  planned.fault_plan.duplicates.push_back({{far, far + 100}, 1.0, 10});
  planned.fault_plan.reorders.push_back({{far, far + 100}, 1.0, 10});

  BootstrapExperiment a(base);
  BootstrapExperiment b(planned);
  EXPECT_NE(b.engine().fault_model(), nullptr);  // the hook IS installed
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(series_hash(ra), series_hash(rb));
  EXPECT_EQ(ra.traffic_during_bootstrap.messages_sent,
            rb.traffic_during_bootstrap.messages_sent);
  EXPECT_EQ(ra.traffic_during_bootstrap.bytes_sent,
            rb.traffic_during_bootstrap.bytes_sent);
}

ExperimentConfig hostile_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = 128;
  cfg.seed = seed;
  cfg.max_cycles = 12;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 4;
  const SimTime epoch = cfg.warmup_cycles * cfg.bootstrap.delta;
  const SimTime delta = cfg.bootstrap.delta;
  FaultPlan& plan = cfg.fault_plan;
  plan.partitions.push_back({{epoch + 2 * delta, epoch + 6 * delta},
                             PartitionSpec::Kind::Cut, 64});
  plan.link_loss.push_back({{epoch, epoch + 12 * delta}, kNullAddress, kNullAddress, 0.1});
  plan.duplicates.push_back({{epoch, epoch + 12 * delta}, 0.1, 100});
  plan.reorders.push_back({{epoch, epoch + 12 * delta}, 0.3, 300});
  plan.crashes.push_back({{epoch + 3 * delta, epoch + 8 * delta}, kNullAddress, 0.2});
  return cfg;
}

TEST(FaultDeterminism, PlanRunIsIdenticalAcrossThreadCounts) {
  // Four replicas with hostile plans, fanned out over 1 vs 4 worker threads:
  // byte-identical series either way (per-replica engines own everything,
  // including their injectors).
  std::vector<bench::ReplicaSpec> specs;
  for (std::size_t i = 0; i < 4; ++i) {
    bench::ReplicaSpec spec;
    spec.cfg = hostile_config(bench::replica_seed(21, i));
    spec.label = "replica " + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  const auto seq = bench::run_replicas(specs, 1);
  const auto par = bench::run_replicas(specs, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(series_hash(seq[i].result), series_hash(par[i].result)) << "replica " << i;
    EXPECT_EQ(seq[i].result.traffic_during_bootstrap.messages_sent,
              par[i].result.traffic_during_bootstrap.messages_sent);
  }
  // And the same spec re-run is reproducible at all (not merely consistent).
  const auto again = bench::run_replicas({specs[0]}, 2);
  EXPECT_EQ(series_hash(again[0].result), series_hash(seq[0].result));
}

// --- bootstrap exchange timeout -------------------------------------------

TEST(ExchangeTimeout, FiresOnRealNonAnswersAndDemotes) {
  // Half the network goes dark mid-bootstrap: unanswered exchanges must trip
  // the per-exchange timeout and push the silent peers into the probe path.
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.seed = 5;
  cfg.max_cycles = 10;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  const SimTime epoch = cfg.warmup_cycles * cfg.bootstrap.delta;
  cfg.fault_plan.crashes.push_back(
      {{epoch + 2 * cfg.bootstrap.delta, epoch + 7 * cfg.bootstrap.delta}, kNullAddress, 0.5});
  BootstrapExperiment exp(cfg);
  exp.run();
  obs::MetricsRegistry& m = exp.engine().metrics();
  EXPECT_GT(m.counter("bootstrap.exchange_timeout").value(), 0u);
  // Timeouts feed the demotion path: the silent peers actually got probed.
  EXPECT_GT(m.counter("msg.sent.probe.request").value(), 0u);
}

TEST(ExchangeTimeout, SilentWithoutEviction) {
  // The timeout machinery is part of the evict_unresponsive extension: with
  // it off, no timeout timers are scheduled even under heavy faults (the
  // golden-replay witnesses depend on this).
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.seed = 5;
  cfg.max_cycles = 8;
  cfg.stop_at_convergence = false;
  const SimTime epoch = cfg.warmup_cycles * cfg.bootstrap.delta;
  cfg.fault_plan.crashes.push_back(
      {{epoch + 2 * cfg.bootstrap.delta, epoch + 6 * cfg.bootstrap.delta}, kNullAddress, 0.5});
  BootstrapExperiment exp(cfg);
  exp.run();
  EXPECT_EQ(exp.engine().metrics().counter("bootstrap.exchange_timeout").value(), 0u);
}

TEST(FaultInteraction, EvictedCrashRecoverNodeIsReadmittedAfterProbe) {
  // Eviction composed with a crash–recover plan: the dark node stops
  // answering, gets condemned and tombstoned out of the overlay, and — once
  // it recovers and the tombstone expires — answers its next probe and is
  // re-admitted, so the network ends fully converged around it again.
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.seed = 7;
  cfg.max_cycles = 24;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 3;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  const Address victim = 3;
  cfg.fault_plan.crashes.push_back({{epoch + 2 * delta, epoch + 8 * delta}, victim, 0.0});

  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  obs::MetricsRegistry& m = exp.engine().metrics();
  // The dark node was condemned while unresponsive...
  EXPECT_GT(m.counter("bootstrap.condemned").value(), 0u);
  // ...and after recovery it answered probes again.
  EXPECT_GT(m.counter("msg.sent.probe.reply").value(), 0u);
  EXPECT_TRUE(exp.engine().is_alive(victim));

  // Re-admission is visible in the others' leaf sets and in the oracle.
  std::size_t appearances = 0;
  for (Address a = 0; a < cfg.n; ++a) {
    if (a == victim) continue;
    for (const auto& d : exp.bootstrap_of(a).leaf_set().all()) {
      appearances += d.addr == victim;
    }
  }
  EXPECT_GT(appearances, 0u);
  EXPECT_LT(result.final_metrics.missing_leaf_fraction(), 0.01);
}

/// Runs a converged network through a 4-cycle latency spike that delays
/// every answer past the exchange/probe timeouts, at the given suspicion
/// threshold; returns the number of condemnations.
std::uint64_t condemned_under_spike(int suspicion_threshold, double* missing_leaf) {
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.seed = 7;
  cfg.max_cycles = 24;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 3;
  cfg.bootstrap.suspicion_threshold = suspicion_threshold;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  LatencySpec spike;
  spike.window = {epoch + 4 * delta, epoch + 10 * delta};
  spike.mode = LatencySpec::Mode::Spike;
  // Answers arrive four cycles late: slower than kProbeAttempts silent
  // probe rounds, so one-shot eviction fires before any echo lands.
  spike.add = 4 * delta;
  cfg.fault_plan.latency.push_back(spike);
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  if (missing_leaf != nullptr) {
    *missing_leaf = result.final_metrics.missing_leaf_fraction();
  }
  return exp.engine().metrics().counter("bootstrap.condemned").value();
}

TEST(Suspicion, AccrualKeepsSlowButAlivePeersThatOneShotEvicts) {
  // Every peer is slow but alive during the spike: one-shot eviction
  // (threshold 0) condemns after kProbeAttempts silent rounds, while
  // suspicion accrual lets the late answers decay the level back down —
  // nobody is condemned and the overlay never degrades.
  double missing_oneshot = 0.0, missing_accrual = 0.0;
  const std::uint64_t oneshot = condemned_under_spike(0, &missing_oneshot);
  const std::uint64_t accrual = condemned_under_spike(24, &missing_accrual);
  EXPECT_GT(oneshot, 0u);   // the spike is harsh enough to trip one-shot
  EXPECT_EQ(accrual, 0u);   // ...but accrual absorbs it
  EXPECT_LT(missing_accrual, 0.01);
  EXPECT_LE(missing_accrual, missing_oneshot);
}

TEST(Suspicion, LevelsDecayOnAnswersAndAreObservable) {
  // A mild spike (answers two cycles late): silent rounds mark suspicion,
  // the late answers decay it back down, and nobody reaches the threshold.
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.seed = 7;
  cfg.max_cycles = 20;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.suspicion_threshold = 6;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  LatencySpec spike;
  spike.window = {epoch + 4 * delta, epoch + 8 * delta};
  spike.mode = LatencySpec::Mode::Spike;
  spike.add = 2 * delta;
  cfg.fault_plan.latency.push_back(spike);
  BootstrapExperiment exp(cfg);
  exp.run();
  obs::MetricsRegistry& m = exp.engine().metrics();
  EXPECT_GT(m.counter("suspect.marked").value(), 0u);
  EXPECT_GT(m.counter("suspect.decayed").value(), 0u);
  EXPECT_EQ(m.counter("suspect.evicted").value(), 0u);
}

TEST(BootstrapConfigDeathTest, RejectsTimeoutBelowTransportLatency) {
  // The transport's min one-way latency is 10: a 5-tick exchange timeout
  // would fire before any answer can arrive. Setup must refuse it.
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.exchange_timeout = 5;
  EXPECT_EXIT({ BootstrapExperiment exp(cfg); }, ::testing::ExitedWithCode(2),
              "min_latency");
}

TEST(BootstrapConfigDeathTest, RejectsZeroRetryBudget) {
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.retry_exchanges = true;
  cfg.bootstrap.exchange_retry_budget = 0;
  EXPECT_EXIT({ BootstrapExperiment exp(cfg); }, ::testing::ExitedWithCode(2),
              "exchange_retry_budget");
}

TEST(BootstrapConfigDeathTest, RejectsRetryWithoutEviction) {
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.bootstrap.retry_exchanges = true;
  EXPECT_EXIT({ BootstrapExperiment exp(cfg); }, ::testing::ExitedWithCode(2),
              "evict_unresponsive");
}

TEST(BootstrapConfigDeathTest, RejectsInvertedAdaptiveBounds) {
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.adaptive_timeout = true;
  cfg.bootstrap.rtt_min_timeout = 4 * kDelta;
  cfg.bootstrap.rtt_max_timeout = kDelta;
  EXPECT_EXIT({ BootstrapExperiment exp(cfg); }, ::testing::ExitedWithCode(2),
              "adaptive timeout bounds");
}

// --- scenario config -------------------------------------------------------

TEST(ScenarioConfigTest, ResolvePrefersFileAndReportsErrors) {
  ScenarioConfig sc;
  sc.faults.link_loss.push_back({{0, 10}, kNullAddress, kNullAddress, 0.5});
  std::string error;
  auto inline_plan = resolve_fault_plan(sc, error);
  ASSERT_TRUE(inline_plan.has_value()) << error;
  EXPECT_EQ(inline_plan->link_loss.size(), 1u);

  sc.faults_path = ::testing::TempDir() + "/plan.txt";
  {
    std::FILE* f = std::fopen(sc.faults_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("seed 3\ndup 0..100 p=0.5\n", f);
    std::fclose(f);
  }
  auto file_plan = resolve_fault_plan(sc, error);
  ASSERT_TRUE(file_plan.has_value()) << error;
  EXPECT_EQ(file_plan->seed, 3u);      // the file wins over the inline plan
  EXPECT_TRUE(file_plan->link_loss.empty());
  EXPECT_EQ(file_plan->duplicates.size(), 1u);

  sc.faults_path = ::testing::TempDir() + "/does_not_exist.txt";
  EXPECT_FALSE(resolve_fault_plan(sc, error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// --- TransportConfig validation -------------------------------------------

TEST(TransportValidation, ValidateCatchesBadConfigs) {
  TransportConfig ok;
  EXPECT_EQ(ok.validate(), "");
  TransportConfig bad_drop;
  bad_drop.drop_probability = 1.5;
  EXPECT_NE(bad_drop.validate().find("drop_probability"), std::string::npos);
  bad_drop.drop_probability = -0.1;
  EXPECT_NE(bad_drop.validate().find("drop_probability"), std::string::npos);
  TransportConfig bad_latency;
  bad_latency.min_latency = 200;
  bad_latency.max_latency = 100;
  EXPECT_NE(bad_latency.validate().find("max_latency"), std::string::npos);
}

TEST(TransportValidationDeathTest, ExperimentSetupRejectsBadDrop) {
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.drop_probability = 1.5;
  EXPECT_EXIT({ BootstrapExperiment exp(cfg); }, ::testing::ExitedWithCode(2),
              "drop_probability");
}

TEST(TransportValidationDeathTest, ExperimentSetupRejectsBadPlanFile) {
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.fault_plan_path = "/nonexistent/plan.txt";
  EXPECT_EXIT({ BootstrapExperiment exp(cfg); }, ::testing::ExitedWithCode(2),
              "cannot open");
}

}  // namespace
}  // namespace bsvc
