#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bench/bench_common.hpp"
#include "common/logging.hpp"

namespace bsvc {
namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make_flags({"--n=4096", "--drop=0.2", "--name=fig3"});
  EXPECT_EQ(f.get_int("n", 0), 4096);
  EXPECT_DOUBLE_EQ(f.get_double("drop", 0.0), 0.2);
  EXPECT_EQ(f.get_string("name", ""), "fig3");
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make_flags({"--n", "128", "--label", "x"});
  EXPECT_EQ(f.get_int("n", 0), 128);
  EXPECT_EQ(f.get_string("label", ""), "x");
}

TEST(Flags, BareBoolean) {
  const Flags f = make_flags({"--full"});
  EXPECT_TRUE(f.get_bool("full", false));
  EXPECT_FALSE(f.get_bool("other", false));
  EXPECT_TRUE(f.get_bool("missing-default-true", true));
}

TEST(Flags, ExplicitBooleanValues) {
  const Flags f = make_flags({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = make_flags({});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get_string("s", "def"), "def");
}

TEST(Flags, HasDetectsPresence) {
  const Flags f = make_flags({"--present"});
  EXPECT_TRUE(f.has("present"));
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, NegativeNumbers) {
  const Flags f = make_flags({"--offset=-5", "--scale=-0.5"});
  EXPECT_EQ(f.get_int("offset", 0), -5);
  EXPECT_DOUBLE_EQ(f.get_double("scale", 0.0), -0.5);
}

TEST(LogLevel, ParseAcceptsEveryLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
}

TEST(LogLevel, ParseRejectsUnknownNames) {
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("WARN"), std::nullopt);  // case-sensitive
}

TEST(LogLevel, BenchFlagAppliesValidLevel) {
  const LogLevel before = log_level();
  const Flags f = make_flags({"--log-level=debug"});
  bench::apply_log_level_flag(f);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(before);
}

TEST(FlagsDeathTest, BogusLogLevelIsAFlagError) {
  EXPECT_EXIT(
      {
        const Flags f = make_flags({"--log-level=bogus"});
        bench::apply_log_level_flag(f);
      },
      testing::ExitedWithCode(2), "invalid --log-level");
}

TEST(FlagsDeathTest, UnknownFlagRejectedByFinish) {
  EXPECT_EXIT(
      {
        const Flags f = make_flags({"--typo=1"});
        f.get_int("n", 0);
        f.finish();
      },
      testing::ExitedWithCode(2), "unknown flag");
}

TEST(FlagsDeathTest, MalformedIntegerRejected) {
  EXPECT_EXIT(
      {
        const Flags f = make_flags({"--n=abc"});
        (void)f.get_int("n", 0);
      },
      testing::ExitedWithCode(2), "expects an integer");
}

TEST(FlagsDeathTest, NonFlagArgumentRejected) {
  EXPECT_EXIT(make_flags({"positional"}), testing::ExitedWithCode(2), "expected --flag");
}

TEST(FlagsDeathTest, BadDropFlagRejectedAtExperimentSetup) {
  // The bench path: --drop feeds ExperimentConfig::drop_probability; an
  // out-of-range value is rejected at setup with a clear error, not deep in
  // the transport.
  EXPECT_EXIT(
      {
        const Flags f = make_flags({"--drop=1.5", "--n=8"});
        ExperimentConfig cfg;
        cfg.n = static_cast<std::size_t>(f.get_int("n", 8));
        cfg.drop_probability = f.get_double("drop", 0.0);
        BootstrapExperiment exp(cfg);
      },
      testing::ExitedWithCode(2), "drop_probability");
}

}  // namespace
}  // namespace bsvc
