#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gossip/aggregation.hpp"
#include "gossip/broadcast.hpp"
#include "sampling/oracle_sampler.hpp"

namespace bsvc {
namespace {

// Test fixture: n nodes with an oracle sampler at slot 0 and the protocol
// under test at slot 1.
// Heap-allocated: OracleSamplerProtocol instances hold a reference to the
// engine, so its address must be stable.
template <typename ProtoFactory>
std::unique_ptr<Engine> make_net(std::size_t n, std::uint64_t seed, ProtoFactory factory) {
  auto e = std::make_unique<Engine>(seed);
  std::vector<Address> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(e->add_node(static_cast<NodeId>(i + 1)));
  for (const Address a : addrs) {
    auto sampler = std::make_unique<OracleSamplerProtocol>(*e, a);
    auto* sampler_ptr = sampler.get();
    e->attach(a, std::move(sampler));
    e->attach(a, factory(a, sampler_ptr));
    e->start_node(a);
  }
  return e;
}

BroadcastProtocol& bcast(Engine& e, Address a) {
  return dynamic_cast<BroadcastProtocol&>(e.protocol(a, 1));  // test-only checked cast
}
AggregationProtocol& aggr(Engine& e, Address a) {
  return dynamic_cast<AggregationProtocol&>(e.protocol(a, 1));  // test-only checked cast
}

TEST(Broadcast, ReachesEveryNode) {
  constexpr std::size_t kN = 1024;
  auto net = make_net(kN, 1, [](Address, PeerSampler* s) {
    return std::make_unique<BroadcastProtocol>(BroadcastConfig{}, s);
  });
  Engine& e = *net;
  e.schedule_call(10, [](Engine& eng) {
    Context ctx(eng, 0, 1);
    bcast(eng, 0).seed(ctx, 42);
  });
  e.run_until(40 * kDelta);
  std::size_t infected = 0;
  for (Address a = 0; a < kN; ++a) infected += bcast(e, a).infected() ? 1 : 0;
  EXPECT_EQ(infected, kN);
}

TEST(Broadcast, SpreadTimeIsLogarithmic) {
  constexpr std::size_t kN = 4096;
  auto net = make_net(kN, 2, [](Address, PeerSampler* s) {
    return std::make_unique<BroadcastProtocol>(BroadcastConfig{}, s);
  });
  Engine& e = *net;
  e.schedule_call(0, [](Engine& eng) {
    Context ctx(eng, 0, 1);
    bcast(eng, 0).seed(ctx, 1);
  });
  e.run_until(60 * kDelta);
  SimTime latest = 0;
  for (Address a = 0; a < kN; ++a) {
    ASSERT_TRUE(bcast(e, a).infected());
    latest = std::max(latest, bcast(e, a).infected_at());
  }
  // SI gossip with fanout 2: coverage in ~log2(N) + tail periods.
  EXPECT_LT(latest, 25 * kDelta);
}

TEST(Broadcast, DeliveryCallbackFiresOncePerNode) {
  constexpr std::size_t kN = 128;
  std::vector<int> deliveries(kN, 0);
  auto net = make_net(kN, 3, [&deliveries](Address a, PeerSampler* s) {
    return std::make_unique<BroadcastProtocol>(
        BroadcastConfig{}, s,
        [&deliveries, a](Context&, std::uint64_t tag) {
          EXPECT_EQ(tag, 7u);
          ++deliveries[a];
        });
  });
  Engine& e = *net;
  e.schedule_call(0, [](Engine& eng) {
    Context ctx(eng, 5, 1);
    bcast(eng, 5).seed(ctx, 7);
  });
  e.run_until(40 * kDelta);
  for (std::size_t a = 0; a < kN; ++a) EXPECT_EQ(deliveries[a], 1) << a;
}

TEST(Broadcast, SurvivesMessageLoss) {
  constexpr std::size_t kN = 512;
  TransportConfig t;
  t.drop_probability = 0.2;
  Engine e(4, t);
  std::vector<Address> addrs;
  for (std::size_t i = 0; i < kN; ++i) addrs.push_back(e.add_node(static_cast<NodeId>(i + 1)));
  for (const Address a : addrs) {
    auto sampler = std::make_unique<OracleSamplerProtocol>(e, a);
    auto* sp = sampler.get();
    e.attach(a, std::move(sampler));
    BroadcastConfig bc;
    bc.hot_rounds = 6;  // extra redundancy under loss
    e.attach(a, std::make_unique<BroadcastProtocol>(bc, sp));
    e.start_node(a);
  }
  e.schedule_call(0, [](Engine& eng) {
    Context ctx(eng, 0, 1);
    bcast(eng, 0).seed(ctx, 1);
  });
  e.run_until(60 * kDelta);
  std::size_t infected = 0;
  for (Address a = 0; a < kN; ++a) infected += bcast(e, a).infected() ? 1 : 0;
  EXPECT_EQ(infected, kN);
}

TEST(Aggregation, ConvergesToGlobalAverage) {
  constexpr std::size_t kN = 256;
  double expected = 0.0;
  auto net = make_net(kN, 5, [&expected](Address a, PeerSampler* s) {
    const double v = static_cast<double>(a);  // values 0..255, mean 127.5
    expected += v;
    return std::make_unique<AggregationProtocol>(AggregationConfig{}, s, v);
  });
  Engine& e = *net;
  expected /= static_cast<double>(kN);
  e.run_until(40 * kDelta);
  for (Address a = 0; a < kN; ++a) {
    EXPECT_NEAR(aggr(e, a).value(), expected, 0.5) << a;
  }
}

TEST(Aggregation, SizeEstimation) {
  constexpr std::size_t kN = 500;
  auto net = make_net(kN, 6, [](Address a, PeerSampler* s) {
    return std::make_unique<AggregationProtocol>(AggregationConfig{}, s, a == 0 ? 1.0 : 0.0);
  });
  Engine& e = *net;
  e.run_until(50 * kDelta);
  for (Address a = 0; a < kN; ++a) {
    EXPECT_NEAR(aggr(e, a).size_estimate(), 500.0, 50.0) << a;
  }
}

TEST(Aggregation, VarianceCollapsesExponentially) {
  // Asynchronous push–pull is not exactly mass-conserving (crossing
  // messages), but the variance must collapse by orders of magnitude and
  // the consensus value must stay near the true mean.
  constexpr std::size_t kN = 128;
  auto net = make_net(kN, 7, [](Address a, PeerSampler* s) {
    return std::make_unique<AggregationProtocol>(AggregationConfig{}, s,
                                                 a % 2 == 0 ? 10.0 : -10.0);
  });
  Engine& e = *net;
  const auto spread = [&]() {
    double lo = 1e18, hi = -1e18;
    for (Address a = 0; a < kN; ++a) {
      lo = std::min(lo, aggr(e, a).value());
      hi = std::max(hi, aggr(e, a).value());
    }
    return hi - lo;
  };
  e.run_until(2 * kDelta);
  const double early = spread();
  e.run_until(40 * kDelta);
  const double late = spread();
  EXPECT_LT(late, early / 100.0);
  for (Address a = 0; a < kN; ++a) {
    EXPECT_NEAR(aggr(e, a).value(), 0.0, 2.5);
  }
}

}  // namespace
}  // namespace bsvc
