#include "sampling/graph_metrics.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sampling/newscast.hpp"

namespace bsvc {
namespace {

TEST(UnionFind, SingletonsAreDistinct) {
  UnionFind uf(5);
  std::vector<std::uint32_t> members{0, 1, 2, 3, 4};
  EXPECT_EQ(uf.count_components(members), 5u);
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  std::vector<std::uint32_t> members{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(uf.count_components(members), 3u);  // {0,1,2,3}, {4}, {5}
  EXPECT_EQ(uf.find(0), uf.find(3));
  EXPECT_NE(uf.find(0), uf.find(4));
}

TEST(UnionFind, UniteIsIdempotent) {
  UnionFind uf(3);
  uf.unite(0, 1);
  uf.unite(0, 1);
  uf.unite(1, 0);
  std::vector<std::uint32_t> members{0, 1, 2};
  EXPECT_EQ(uf.count_components(members), 2u);
}

TEST(UnionFind, ComponentsOfSubset) {
  UnionFind uf(10);
  uf.unite(0, 1);
  uf.unite(8, 9);
  std::vector<std::uint32_t> subset{0, 1, 8};
  EXPECT_EQ(uf.count_components(subset), 2u);
}

// measure_view_graph on a hand-built topology: a ring of views.
TEST(ViewGraph, HandBuiltRingTopology) {
  Engine e(1);
  constexpr std::size_t kN = 16;
  for (std::size_t i = 0; i < kN; ++i) {
    const Address a = e.add_node(static_cast<NodeId>(i + 1));
    e.attach(a, std::make_unique<NewscastProtocol>(NewscastConfig{}));
  }
  for (Address a = 0; a < kN; ++a) {
    auto& nc = dynamic_cast<NewscastProtocol&>(e.protocol(a, 0));  // test-only checked cast
    nc.init_view({e.descriptor_of((a + 1) % kN)});  // each points at its next
    e.start_node(a);
  }
  // Run only the time-0 start events: views hold exactly the seeds (message
  // latency keeps any first exchange from completing at t=0).
  e.run_until(0);
  const auto stats = measure_view_graph(e, SlotRef<NewscastProtocol>::assume(0));
  EXPECT_EQ(stats.alive_nodes, kN);
  EXPECT_EQ(stats.components, 1u);
  EXPECT_DOUBLE_EQ(stats.indegree_mean, 1.0);
  EXPECT_EQ(stats.indegree_max, 1u);
  EXPECT_DOUBLE_EQ(stats.dead_entry_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.clustering, 0.0);  // a big cycle has no triangles
}

TEST(ViewGraph, DetectsDeadEntriesAndDisconnection) {
  Engine e(1);
  for (std::size_t i = 0; i < 4; ++i) {
    const Address a = e.add_node(static_cast<NodeId>(i + 1));
    e.attach(a, std::make_unique<NewscastProtocol>(NewscastConfig{}));
  }
  // Two disconnected pairs: 0<->1, 2<->3.
  const auto wire = [&](Address x, Address y) {
    dynamic_cast<NewscastProtocol&>(e.protocol(x, 0)).init_view({e.descriptor_of(y)});  // test-only checked cast
  };
  wire(0, 1);
  wire(1, 0);
  wire(2, 3);
  wire(3, 2);
  for (Address a = 0; a < 4; ++a) e.start_node(a);
  e.run_until(0);
  auto stats = measure_view_graph(e, SlotRef<NewscastProtocol>::assume(0));
  EXPECT_EQ(stats.components, 2u);

  e.kill_node(3);
  stats = measure_view_graph(e, SlotRef<NewscastProtocol>::assume(0));
  EXPECT_EQ(stats.alive_nodes, 3u);
  // Node 2's single view entry points at the dead node 3.
  EXPECT_NEAR(stats.dead_entry_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.components, 2u);  // {0,1} and isolated {2}
}

}  // namespace
}  // namespace bsvc
