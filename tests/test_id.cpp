#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "id/digits.hpp"
#include "id/id_generator.hpp"
#include "id/node_id.hpp"
#include "id/ring.hpp"

namespace bsvc {
namespace {

TEST(Ring, DistancesWrapAround) {
  EXPECT_EQ(successor_distance<NodeId>(10, 15), 5u);
  EXPECT_EQ(predecessor_distance<NodeId>(10, 15), NodeId(0) - 5);
  // Wrapping: from near the top to near the bottom.
  const NodeId top = ~NodeId{0} - 1;
  EXPECT_EQ(successor_distance<NodeId>(top, 3), 5u);
  EXPECT_EQ(ring_distance<NodeId>(top, 3), 5u);
}

TEST(Ring, RingDistanceSymmetric) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const NodeId a = rng.next_u64();
    const NodeId b = rng.next_u64();
    EXPECT_EQ(ring_distance(a, b), ring_distance(b, a));
  }
}

TEST(Ring, RingDistanceAtMostHalf) {
  Rng rng(2);
  const NodeId half = NodeId{1} << 63;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(ring_distance(rng.next_u64(), rng.next_u64()), half);
  }
}

TEST(Ring, SuccessorClassificationPartitionsOthers) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const NodeId own = rng.next_u64();
    const NodeId x = rng.next_u64();
    if (x == own) continue;
    // Exactly one of successor / predecessor (predecessor == !successor).
    const bool succ = is_successor(own, x);
    EXPECT_EQ(succ, successor_distance(own, x) <= predecessor_distance(own, x));
  }
}

TEST(Ring, SelfIsNotItsOwnSuccessor) {
  EXPECT_FALSE(is_successor<NodeId>(5, 5));
}

TEST(Ring, HalfwayTieIsSuccessor) {
  const NodeId own = 1000;
  const NodeId x = own + (NodeId{1} << 63);
  EXPECT_TRUE(is_successor(own, x));
}

TEST(Ring, CloserOnRingIsStrictWeakOrdering) {
  Rng rng(4);
  const NodeId pivot = rng.next_u64();
  std::vector<NodeId> ids;
  for (int i = 0; i < 50; ++i) ids.push_back(rng.next_u64());
  // Irreflexivity and asymmetry.
  for (const NodeId a : ids) {
    EXPECT_FALSE(closer_on_ring(pivot, a, a));
    for (const NodeId b : ids) {
      if (closer_on_ring(pivot, a, b)) EXPECT_FALSE(closer_on_ring(pivot, b, a));
    }
  }
  // Sorting with it must not crash and must be by nondecreasing distance.
  std::sort(ids.begin(), ids.end(),
            [pivot](NodeId a, NodeId b) { return closer_on_ring(pivot, a, b); });
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LE(ring_distance(pivot, ids[i - 1]), ring_distance(pivot, ids[i]));
  }
}

TEST(Ring, WorksFor128Bit) {
  using U = NodeId128;
  const U a = (U{1} << 100) + 5;
  const U b = (U{1} << 100) + 12;
  EXPECT_EQ(successor_distance(a, b), U{7});
  EXPECT_EQ(ring_distance(a, b), U{7});
  EXPECT_TRUE(is_successor(a, b));
  EXPECT_FALSE(is_successor(b, a));
}

// --- digit arithmetic, parameterized over b ------------------------------

class DigitsParam : public ::testing::TestWithParam<int> {};

TEST_P(DigitsParam, DigitExtractionRoundtrips) {
  const DigitConfig cfg{GetParam()};
  cfg.validate<NodeId>();
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId id = rng.next_u64();
    NodeId rebuilt = 0;
    for (int i = 0; i < cfg.num_digits<NodeId>(); ++i) {
      const int d = digit(id, i, cfg);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, cfg.radix());
      rebuilt = (rebuilt << cfg.bits_per_digit) | static_cast<NodeId>(d);
    }
    EXPECT_EQ(rebuilt, id);
  }
}

TEST_P(DigitsParam, CommonPrefixMatchesNaive) {
  const DigitConfig cfg{GetParam()};
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    const NodeId x = rng.next_u64();
    // Mutate one random digit so prefixes of all lengths occur.
    const int flip = static_cast<int>(rng.below(cfg.num_digits<NodeId>()));
    NodeId y = x;
    const int shift = id_bits<NodeId>() - (flip + 1) * cfg.bits_per_digit;
    y ^= (NodeId{1} + rng.below(static_cast<std::uint64_t>(cfg.radix()) - 1)) << shift;
    int naive = 0;
    while (naive < cfg.num_digits<NodeId>() && digit(x, naive, cfg) == digit(y, naive, cfg)) {
      ++naive;
    }
    EXPECT_EQ(common_prefix_digits(x, y, cfg), naive);
    EXPECT_EQ(common_prefix_digits(x, y, cfg), common_prefix_digits(y, x, cfg));
  }
}

TEST_P(DigitsParam, CommonPrefixOfSelfIsAllDigits) {
  const DigitConfig cfg{GetParam()};
  Rng rng(7);
  const NodeId x = rng.next_u64();
  EXPECT_EQ(common_prefix_digits(x, x, cfg), cfg.num_digits<NodeId>());
}

TEST_P(DigitsParam, PrefixRangeContainsExactlyMatchingIds) {
  const DigitConfig cfg{GetParam()};
  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId own = rng.next_u64();
    const int row = static_cast<int>(rng.below(cfg.num_digits<NodeId>()));
    int col = static_cast<int>(rng.below(static_cast<std::uint64_t>(cfg.radix())));
    if (col == digit(own, row, cfg)) col = (col + 1) % cfg.radix();
    const NodeId lo = prefix_range_lo(own, row, col, cfg);
    const NodeId hi = prefix_range_hi(own, row, col, cfg);

    // Membership test for an id y: lcp(own, y) == row and digit row == col.
    const auto in_cell = [&](NodeId y) {
      return common_prefix_digits(own, y, cfg) == row && digit(y, row, cfg) == col;
    };
    EXPECT_TRUE(in_cell(lo));
    EXPECT_TRUE(in_cell(hi - 1));  // last id of the range (hi may wrap to 0)
    EXPECT_FALSE(in_cell(lo - 1));
    if (hi != 0) EXPECT_FALSE(in_cell(hi));
    // A random id inside the range belongs to the cell.
    const NodeId span = hi - lo;  // correct even when hi wrapped to 0
    const NodeId y = lo + rng.below(span == 0 ? 1 : span);
    EXPECT_TRUE(in_cell(y));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDigitWidths, DigitsParam, ::testing::Values(1, 2, 4, 8));

TEST(CountLeadingZeros, KnownValues) {
  EXPECT_EQ(count_leading_zeros<NodeId>(0), 64);
  EXPECT_EQ(count_leading_zeros<NodeId>(1), 63);
  EXPECT_EQ(count_leading_zeros<NodeId>(~NodeId{0}), 0);
  EXPECT_EQ(count_leading_zeros<NodeId128>(0), 128);
  EXPECT_EQ(count_leading_zeros<NodeId128>(1), 127);
  EXPECT_EQ(count_leading_zeros<NodeId128>(NodeId128{1} << 100), 27);
}

TEST(IdGenerator, UniquenessAndReserve) {
  IdGenerator gen{Rng(9)};
  std::set<NodeId> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(gen.next()).second);
  const NodeId taken = *seen.begin();
  EXPECT_FALSE(gen.reserve(taken));
  EXPECT_TRUE(gen.reserve(taken + 1) || seen.count(taken + 1) > 0);
}

TEST(IdGenerator, BatchSizeAndUniqueness) {
  IdGenerator gen{Rng(10)};
  const auto batch = gen.next_batch(1000);
  EXPECT_EQ(batch.size(), 1000u);
  std::set<NodeId> seen(batch.begin(), batch.end());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace bsvc
