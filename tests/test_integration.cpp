// Cross-module integration scenarios: combinations of features the
// module-level suites exercise in isolation.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "overlay/chord.hpp"
#include "overlay/pastry_router.hpp"
#include "overlay/proximity.hpp"
#include "sampling/oracle_sampler.hpp"
#include "sim/scenario.hpp"
#include "wire/message_codec.hpp"

namespace bsvc {
namespace {

TEST(Integration, WireTranscoderPlusDropPlusChurn) {
  // Everything at once: binary round-trip on every message, 10% loss, and
  // continuous churn — the protocol must stay functional.
  ExperimentConfig cfg;
  cfg.n = 512;
  cfg.seed = 21;
  cfg.max_cycles = 40;
  cfg.drop_probability = 0.1;
  cfg.churn_fail_rate = 0.002;
  cfg.churn_join_rate = 0.002;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  BootstrapExperiment exp(cfg);
  exp.engine().set_transcoder(wire_roundtrip_transcoder());
  const auto result = exp.run();
  ASSERT_EQ(result.series.rows(), 40u);
  EXPECT_LT(result.series.at(39, 1), 0.25);
  EXPECT_LT(result.series.at(39, 2), 0.25);
}

TEST(Integration, CoordinateLatencyDoesNotBreakConvergence) {
  // Replace the uniform transport latency with coordinate-derived delays;
  // the protocol is latency-agnostic as long as request+answer fit in Δ.
  ExperimentConfig cfg;
  cfg.n = 512;
  cfg.seed = 22;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);
  CoordinateSpace space(exp.engine().node_count(), Rng(5), /*side=*/300.0, /*base=*/10.0);
  space.install(exp.engine());
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
}

TEST(Integration, ChordSurvivesWireRoundtrip) {
  Engine engine(23);
  IdGenerator ids{Rng(99)};
  constexpr std::size_t kN = 256;
  for (std::size_t i = 0; i < kN; ++i) engine.add_node(ids.next());
  for (Address a = 0; a < kN; ++a) {
    auto sampler = std::make_unique<OracleSamplerProtocol>(engine, a);
    auto* sp = sampler.get();
    engine.attach(a, std::move(sampler));
    engine.attach(a, std::make_unique<ChordBootstrapProtocol>(ChordConfig{}, sp,
                                                              engine.rng().below(kDelta)));
    engine.start_node(a);
  }
  engine.set_transcoder(wire_roundtrip_transcoder());
  const ChordOracle oracle(engine, SlotRef<ChordBootstrapProtocol>::assume(1));
  engine.run_until(40 * kDelta);
  EXPECT_TRUE(oracle.measure().fingers_converged());
}

TEST(Integration, TwoPoolMergeEndToEnd) {
  constexpr std::size_t kN = 512;
  ExperimentConfig cfg;
  cfg.n = kN;
  cfg.seed = 24;
  cfg.max_cycles = 90;
  cfg.stop_at_convergence = true;
  cfg.initial_groups.resize(kN);
  for (Address a = 0; a < kN; ++a) cfg.initial_groups[a] = a < kN / 2 ? 0 : 1;
  BootstrapExperiment exp(cfg);
  Engine& engine = exp.engine();
  const auto newscast_slot = exp.newscast_slot();
  engine.schedule_call((cfg.warmup_cycles + 25) * cfg.bootstrap.delta,
                       [newscast_slot](Engine& e) {
                         heal_partition(e);
                         for (int i = 0; i < 8; ++i) {
                           const auto a = static_cast<Address>(e.rng().below(kN / 2));
                           const auto b =
                               static_cast<Address>(kN / 2 + e.rng().below(kN / 2));
                           dynamic_cast<NewscastProtocol&>(e.protocol(a, newscast_slot))  // test-only checked cast
                               .add_contact(e.descriptor_of(b), e.now());
                         }
                       });
  const auto result = exp.run();
  ASSERT_GE(result.converged_cycle, 25);
  // Lookups across the former partition boundary succeed.
  const ConvergenceOracle oracle(engine, cfg.bootstrap, exp.bootstrap_slot());
  const PastryRouter router(engine, exp.bootstrap_slot());
  Rng rng(7);
  std::size_t cross_correct = 0;
  for (int i = 0; i < 100; ++i) {
    const Address start = static_cast<Address>(rng.below(kN / 2));          // pool A
    const Address target = static_cast<Address>(kN / 2 + rng.below(kN / 2));  // pool B
    const auto r = router.route(start, engine.id_of(target), oracle);
    cross_correct += (r.delivered && r.root == target) ? 1 : 0;
  }
  EXPECT_EQ(cross_correct, 100u);
}

TEST(Integration, RepeatedRestartsAreIdempotentOnStableMembership) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 25;
  cfg.max_cycles = 40;
  BootstrapExperiment exp(cfg);
  ASSERT_GE(exp.run().converged_cycle, 0);
  auto& engine = exp.engine();
  // Restart everyone twice in a row; with unchanged membership the network
  // must return to perfection quickly each time.
  for (int round = 0; round < 2; ++round) {
    for (const Address a : engine.alive_addresses()) {
      engine.schedule_timer(a, exp.bootstrap_slot(), engine.rng().below(kDelta),
                            BootstrapProtocol::kRestartTimer);
    }
    engine.run_until(engine.now() + 25 * kDelta);
    const ConvergenceOracle oracle(engine, cfg.bootstrap, exp.bootstrap_slot());
    EXPECT_TRUE(oracle.measure().converged()) << "round " << round;
  }
}

}  // namespace
}  // namespace bsvc
