#include "overlay/join_protocol.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace bsvc {
namespace {

TEST(SequentialJoin, FirstNodeIsFree) {
  SequentialJoinNetwork net(BootstrapConfig{}, 1);
  net.join({12345, 0});
  EXPECT_EQ(net.size(), 1u);
  EXPECT_EQ(net.costs().messages, 0u);
  EXPECT_EQ(net.costs().joins, 1u);
}

TEST(SequentialJoin, GrowBuildsRequestedSize) {
  SequentialJoinNetwork net(BootstrapConfig{}, 2);
  net.grow(100);
  EXPECT_EQ(net.size(), 100u);
  EXPECT_EQ(net.costs().joins, 100u);
  EXPECT_GT(net.costs().messages, 0u);
  EXPECT_GT(net.costs().bytes, net.costs().messages);  // messages carry data
}

TEST(SequentialJoin, TablesAreHighQuality) {
  SequentialJoinNetwork net(BootstrapConfig{}, 3);
  net.grow(300);
  auto q = net.measure_quality(400);
  // Sequential Pastry joins give good-but-not-perfect tables; lookups must
  // work nearly always.
  EXPECT_LT(q.missing_leaf_fraction, 0.02);
  EXPECT_GT(q.lookup_success_rate, 0.97);
  EXPECT_GE(q.missing_prefix_fraction, 0.0);
  EXPECT_LT(q.missing_prefix_fraction, 0.6);
}

TEST(SequentialJoin, CostsScaleSuperlinearlyInMessages) {
  const auto msgs_for = [](std::size_t n) {
    SequentialJoinNetwork net(BootstrapConfig{}, 4);
    net.grow(n);
    return net.costs().messages;
  };
  const auto m200 = msgs_for(200);
  const auto m400 = msgs_for(400);
  // Per-join cost grows with network size (route length + announcements),
  // so doubling N more than doubles messages.
  EXPECT_GT(m400, 2 * m200);
}

TEST(SequentialJoin, MakespanGrowsLinearlyWithJoins) {
  SequentialJoinNetwork net(BootstrapConfig{}, 5);
  net.grow(50);
  const auto t50 = net.costs().critical_time;
  net.grow(50);
  const auto t100 = net.costs().critical_time;
  // Serialized joins: the second batch costs at least as much as the first.
  EXPECT_GE(t100 - t50, t50 / 2);
  EXPECT_GT(net.costs().avg_route_hops(), 0.0);
}

TEST(SequentialJoin, LeafAndPrefixAccessors) {
  BootstrapConfig cfg;
  SequentialJoinNetwork net(cfg, 6);
  net.grow(64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_LE(net.leaf_of(i).size(), cfg.c);
    EXPECT_EQ(net.prefix_of(i).k(), cfg.k);
  }
}

}  // namespace
}  // namespace bsvc
