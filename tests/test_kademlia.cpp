#include "overlay/kademlia_lookup.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace bsvc {
namespace {

ExperimentConfig make_config(std::size_t n, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.max_cycles = 80;
  return cfg;
}

TEST(XorDistance, BasicProperties) {
  EXPECT_EQ(xor_distance(5, 5), 0u);
  EXPECT_EQ(xor_distance(0, 0xFF), 0xFFu);
  EXPECT_EQ(xor_distance(3, 9), xor_distance(9, 3));
  // Unique decodability: d(a, x) == d(b, x) implies a == b.
  EXPECT_NE(xor_distance(1, 7), xor_distance(2, 7));
}

TEST(KademliaLookup, ExactAfterConvergence) {
  BootstrapExperiment exp(make_config(512, 1));
  exp.run();
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  ASSERT_TRUE(oracle.measure().converged());
  const KademliaLookup kad(exp.engine(), exp.bootstrap_slot());
  Rng rng(2);
  const auto stats = kad.run_lookups(oracle, rng, 300);
  EXPECT_EQ(stats.attempted, 300u);
  EXPECT_DOUBLE_EQ(stats.exact_rate(), 1.0);
}

TEST(KademliaLookup, QueryCountIsLogarithmic) {
  BootstrapExperiment exp(make_config(1024, 3));
  exp.run();
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  const KademliaLookup kad(exp.engine(), exp.bootstrap_slot());
  Rng rng(4);
  const auto stats = kad.run_lookups(oracle, rng, 200);
  // Iterative lookup contacts O(alpha * log N) nodes; far below N.
  EXPECT_LT(stats.avg_queries, 40.0);
}

TEST(KademliaLookup, FindsSelfForOwnId) {
  BootstrapExperiment exp(make_config(256, 5));
  exp.run();
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  const KademliaLookup kad(exp.engine(), exp.bootstrap_slot());
  const auto r = kad.find_node(9, exp.engine().id_of(9), oracle);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.closest.addr, 9u);
}

TEST(KademliaLookup, TargetEqualToMemberIdIsFound) {
  BootstrapExperiment exp(make_config(256, 6));
  exp.run();
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  const KademliaLookup kad(exp.engine(), exp.bootstrap_slot());
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const Address target = static_cast<Address>(rng.below(256));
    const auto r = kad.find_node(0, exp.engine().id_of(target), oracle);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.closest.addr, target);
  }
}

TEST(KademliaLookup, SurvivesDeadNodesInShortlist) {
  BootstrapExperiment exp(make_config(512, 8));
  exp.run();
  // Kill 20% after convergence; lookups must avoid the corpses and still
  // find the best alive candidate most of the time.
  auto& engine = exp.engine();
  Rng rng(9);
  for (Address a = 0; a < 512; ++a) {
    if (rng.chance(0.2)) engine.kill_node(a);
  }
  const ConvergenceOracle oracle(engine, exp.config().bootstrap, exp.bootstrap_slot());
  const KademliaLookup kad(engine, exp.bootstrap_slot());
  const auto stats = kad.run_lookups(oracle, rng, 200);
  EXPECT_GT(stats.exact_rate(), 0.7);
}

}  // namespace
}  // namespace bsvc
