#include "core/leaf_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/perfect_tables.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

NodeDescriptor d(NodeId id) { return {id, static_cast<Address>(id & 0xFFFF)}; }

TEST(LeafSet, StartsEmpty) {
  LeafSet ls(1000, 8);
  EXPECT_TRUE(ls.empty());
  EXPECT_EQ(ls.size(), 0u);
  EXPECT_EQ(ls.capacity(), 8u);
  EXPECT_EQ(ls.own_id(), 1000u);
}

TEST(LeafSet, IgnoresOwnIdAndNullAddresses) {
  LeafSet ls(1000, 8);
  const std::vector<NodeDescriptor> in{{1000, 5}, {2000, kNullAddress}};
  ls.update(in);
  EXPECT_TRUE(ls.empty());
}

TEST(LeafSet, ClassifiesDirections) {
  LeafSet ls(1000, 8);
  const std::vector<NodeDescriptor> in{d(1001), d(1002), d(999), d(998)};
  ls.update(in);
  ASSERT_EQ(ls.successors().size(), 2u);
  ASSERT_EQ(ls.predecessors().size(), 2u);
  EXPECT_EQ(ls.successors()[0].id, 1001u);  // sorted by successor distance
  EXPECT_EQ(ls.successors()[1].id, 1002u);
  EXPECT_EQ(ls.predecessors()[0].id, 999u);
  EXPECT_EQ(ls.predecessors()[1].id, 998u);
}

TEST(LeafSet, KeepsClosestPerDirection) {
  LeafSet ls(1000, 4);  // 2 per direction
  std::vector<NodeDescriptor> in;
  for (NodeId i = 1; i <= 10; ++i) {
    in.push_back(d(1000 + i));
    in.push_back(d(1000 - i));
  }
  ls.update(in);
  ASSERT_EQ(ls.successors().size(), 2u);
  ASSERT_EQ(ls.predecessors().size(), 2u);
  EXPECT_EQ(ls.successors()[0].id, 1001u);
  EXPECT_EQ(ls.successors()[1].id, 1002u);
  EXPECT_EQ(ls.predecessors()[0].id, 999u);
  EXPECT_EQ(ls.predecessors()[1].id, 998u);
}

TEST(LeafSet, TopsUpFromOtherDirectionWhenShort) {
  LeafSet ls(1000, 6);  // wants 3+3
  // Only one predecessor exists; successors must fill the spare capacity.
  const std::vector<NodeDescriptor> in{d(999), d(1001), d(1002), d(1003), d(1004), d(1005),
                                       d(1006)};
  ls.update(in);
  EXPECT_EQ(ls.predecessors().size(), 1u);
  EXPECT_EQ(ls.successors().size(), 5u);
  EXPECT_EQ(ls.size(), 6u);
}

TEST(LeafSet, UpdateIsMonotoneImprovement) {
  LeafSet ls(0, 4);
  ls.update(std::vector<NodeDescriptor>{d(100), d(200)});
  EXPECT_TRUE(ls.contains(100));
  // With no predecessors known, the top-up rule keeps up to capacity
  // successors; closer ones sort first.
  ls.update(std::vector<NodeDescriptor>{d(10), d(20), d(300)});
  EXPECT_TRUE(ls.contains(10));
  EXPECT_TRUE(ls.contains(20));
  EXPECT_TRUE(ls.contains(100));
  EXPECT_TRUE(ls.contains(200));
  EXPECT_FALSE(ls.contains(300));  // fifth-closest successor: beyond capacity
  // Once predecessors appear they reclaim their half of the capacity.
  const NodeId near_pred = NodeId(0) - 5;
  const NodeId far_pred = NodeId(0) - 9;
  ls.update(std::vector<NodeDescriptor>{d(near_pred), d(far_pred)});
  EXPECT_TRUE(ls.contains(near_pred));
  EXPECT_TRUE(ls.contains(far_pred));
  EXPECT_TRUE(ls.contains(10));
  EXPECT_TRUE(ls.contains(20));
  EXPECT_FALSE(ls.contains(100));
}

TEST(LeafSet, UpdateIsIdempotent) {
  LeafSet ls(500, 6);
  const std::vector<NodeDescriptor> in{d(400), d(600), d(450)};
  ls.update(in);
  const auto first = ls.all();
  ls.update(in);
  EXPECT_EQ(ls.all(), first);
}

TEST(LeafSet, NoDuplicateIds) {
  LeafSet ls(0, 8);
  const std::vector<NodeDescriptor> in{d(5), d(5), d(5), d(7)};
  ls.update(in);
  EXPECT_EQ(ls.size(), 2u);
}

TEST(LeafSet, RemoveEntry) {
  LeafSet ls(0, 8);
  ls.update(std::vector<NodeDescriptor>{d(5), d(7)});
  EXPECT_TRUE(ls.remove(5));
  EXPECT_FALSE(ls.contains(5));
  EXPECT_FALSE(ls.remove(5));
  EXPECT_EQ(ls.size(), 1u);
}

TEST(LeafSet, SortedByRingDistanceOrder) {
  LeafSet ls(1000, 8);
  std::vector<NodeDescriptor> in{d(1010), d(990), d(1001), d(995)};
  ls.update(in);
  const auto sorted = ls.sorted_by_ring_distance();
  ASSERT_EQ(sorted.size(), 4u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(ring_distance<NodeId>(1000, sorted[i - 1].id),
              ring_distance<NodeId>(1000, sorted[i].id));
  }
  EXPECT_EQ(sorted[0].id, 1001u);
}

TEST(LeafSet, WrapAroundNeighbours) {
  const NodeId own = ~NodeId{0} - 2;  // near the top of the ID space
  LeafSet ls(own, 4);
  const std::vector<NodeDescriptor> in{d(1), d(5), d(own - 1), d(own - 5)};
  ls.update(in);
  // 1 and 5 are successors across the wrap.
  EXPECT_EQ(ls.successors().size(), 2u);
  EXPECT_EQ(ls.successors()[0].id, 1u);
  EXPECT_EQ(ls.predecessors()[0].id, own - 1);
}

// Property: given global knowledge, LeafSet converges to exactly the
// perfect leaf set the oracle computes, across many random memberships.
class LeafSetVsOracle : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LeafSetVsOracle, FullKnowledgeEqualsPerfect) {
  const auto [n, c] = GetParam();
  const auto members = test::random_descriptors(n, 42 + n + c);
  BootstrapConfig cfg;
  cfg.c = c;
  const PerfectTables truth(members, cfg);

  for (std::size_t probe = 0; probe < std::min<std::size_t>(n, 25); ++probe) {
    const auto& me = members[probe];
    LeafSet ls(me.id, c);
    ls.update(members);  // sees everyone, including itself (must be skipped)
    auto expect = truth.perfect_leaf_ids(truth.rank_of_id(me.id));
    std::vector<NodeId> got;
    for (const auto& e : ls.all()) got.push_back(e.id);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "n=" << n << " c=" << c << " probe=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeafSetVsOracle,
                         ::testing::Combine(::testing::Values(3, 5, 10, 21, 64, 257),
                                            ::testing::Values(2, 4, 8, 20)));

}  // namespace
}  // namespace bsvc
