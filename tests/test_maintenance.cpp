// Tests for the liveness-maintenance extension (evict_unresponsive):
// probe/evict, death certificates, restart-based recovery, and massive-join
// absorption.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "sim/scenario.hpp"
#include "wire/message_codec.hpp"

namespace bsvc {
namespace {

ExperimentConfig base(std::size_t n, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.max_cycles = 60;
  return cfg;
}

TEST(Maintenance, EvictionClearsDeadLeafEntries) {
  auto cfg = base(512, 1);
  cfg.bootstrap.evict_unresponsive = true;
  BootstrapExperiment exp(cfg);
  const auto initial = exp.run();
  ASSERT_GE(initial.converged_cycle, 0);

  // Kill 10% of the nodes, keep gossiping, and check the survivors purge
  // the dead entries from their leaf sets.
  auto& engine = exp.engine();
  for (Address a = 0; a < 51; ++a) engine.kill_node(a);
  engine.run_until(engine.now() + 30 * kDelta);

  std::size_t dead_leaf_entries = 0;
  std::size_t total_leaf_entries = 0;
  for (const Address a : engine.alive_addresses()) {
    for (const auto& d : exp.bootstrap_of(a).leaf_set().all()) {
      ++total_leaf_entries;
      if (!engine.is_alive(d.addr)) ++dead_leaf_entries;
    }
  }
  EXPECT_LT(static_cast<double>(dead_leaf_entries) / static_cast<double>(total_leaf_entries),
            0.005);
  // And the survivors' leaf sets re-converged to the survivor-perfect sets.
  const ConvergenceOracle oracle(engine, cfg.bootstrap, exp.bootstrap_slot());
  const auto m = oracle.measure(/*check_liveness=*/true);
  EXPECT_LT(m.missing_leaf_fraction(), 0.01);
}

TEST(Maintenance, WithoutEvictionDeadEntriesPersist) {
  auto cfg = base(512, 2);  // extension off: the paper's bare protocol
  BootstrapExperiment exp(cfg);
  ASSERT_GE(exp.run().converged_cycle, 0);
  auto& engine = exp.engine();
  for (Address a = 0; a < 51; ++a) engine.kill_node(a);
  engine.run_until(engine.now() + 30 * kDelta);
  std::size_t dead_leaf_entries = 0;
  for (const Address a : engine.alive_addresses()) {
    for (const auto& d : exp.bootstrap_of(a).leaf_set().all()) {
      dead_leaf_entries += engine.is_alive(d.addr) ? 0 : 1;
    }
  }
  EXPECT_GT(dead_leaf_entries, 100u);  // ~51 dead x ~20 holders, never cleaned
}

TEST(Maintenance, TombstonesTravelOnTheWire) {
  const BootstrapMessage msg({1, 1}, {}, {}, true);
  auto with_ts = std::make_unique<BootstrapMessage>(msg.sender, DescriptorList{},
                                                    DescriptorList{}, true);
  with_ts->tombstones = {{0xAAAA, 5000}, {0xBBBB, 9000}};
  const auto bytes = encode_message(*with_ts);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size() - 1, with_ts->wire_bytes());
  auto decoded = decode_message(*bytes);
  ASSERT_NE(decoded, nullptr);
  const auto& back = dynamic_cast<const BootstrapMessage&>(*decoded);  // test-only checked cast
  ASSERT_EQ(back.tombstones.size(), 2u);
  EXPECT_EQ(back.tombstones[0].id, 0xAAAAu);
  EXPECT_EQ(back.tombstones[0].expiry, 5000u);
  EXPECT_EQ(back.tombstones[1].id, 0xBBBBu);
}

TEST(Maintenance, RestartRecoversFromCatastrophe) {
  auto cfg = base(512, 3);
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 60;
  cfg.stop_at_convergence = false;
  cfg.max_cycles = 20;
  BootstrapExperiment exp(cfg);
  exp.run();  // initial convergence window
  auto& engine = exp.engine();

  schedule_catastrophe(engine, engine.now(), 0.7);
  engine.run_until(engine.now() + 8 * kDelta);  // Newscast quarantine
  for (const Address a : engine.alive_addresses()) {
    engine.schedule_timer(a, exp.bootstrap_slot(), engine.rng().below(kDelta),
                          BootstrapProtocol::kRestartTimer);
  }
  engine.run_until(engine.now() + 60 * kDelta);

  const ConvergenceOracle oracle(engine, cfg.bootstrap, exp.bootstrap_slot());
  const auto m = oracle.measure(/*check_liveness=*/true);
  EXPECT_LT(m.missing_leaf_fraction(), 0.05);
  EXPECT_LT(m.missing_prefix_fraction(), 0.05);
}

TEST(Maintenance, MassiveJoinAbsorbedToPerfection) {
  auto cfg = base(256, 4);
  BootstrapExperiment exp(cfg);
  ASSERT_GE(exp.run().converged_cycle, 0);
  auto& engine = exp.engine();
  for (int i = 0; i < 256; ++i) {
    const Address addr = exp.make_node();
    engine.start_node(addr, engine.rng().below(kDelta));
  }
  int absorbed = -1;
  for (int cycle = 0; cycle < 40; ++cycle) {
    engine.run_until(engine.now() + kDelta);
    const ConvergenceOracle oracle(engine, cfg.bootstrap, exp.bootstrap_slot());
    if (oracle.measure().converged()) {
      absorbed = cycle;
      break;
    }
  }
  ASSERT_GE(absorbed, 0);
  EXPECT_LE(absorbed, 30);
}

TEST(Maintenance, FalseTombstonesExpire) {
  // With heavy loss, live peers get condemned occasionally; after the TTL
  // they may return, and meanwhile the network keeps working.
  auto cfg = base(256, 5);
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 5;
  cfg.drop_probability = 0.2;
  cfg.stop_at_convergence = false;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  // With 20% loss, a probe sequence of 3 attempts still misfires ~5% of the
  // time and the short-TTL certificates suppress the victims briefly; the
  // requirement is graceful degradation, not perfection — the bare protocol
  // (extension off) is what the lossy Figure 4 experiments use.
  const auto rows = result.series.rows();
  EXPECT_LT(result.series.at(rows - 1, 1), 0.15);
  EXPECT_LT(result.series.at(rows - 1, 2), 0.15);
}

}  // namespace
}  // namespace bsvc
