#include "sampling/newscast.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sampling/graph_metrics.hpp"
#include "sim/scenario.hpp"

namespace bsvc {
namespace {

struct NewscastNet {
  Engine engine;
  std::size_t n;

  NewscastNet(std::size_t n, std::uint64_t seed, NewscastConfig cfg = {},
              std::size_t contacts = 5, bool star_init = false)
      : engine(seed), n(n) {
    for (std::size_t i = 0; i < n; ++i) {
      const Address a = engine.add_node(static_cast<NodeId>(i * 2654435761u + 1));
      engine.attach(a, std::make_unique<NewscastProtocol>(cfg));
    }
    for (Address a = 0; a < n; ++a) {
      DescriptorList seeds;
      if (star_init) {
        // Degenerate initialization: everyone knows only node 0.
        if (a != 0) seeds.push_back(engine.descriptor_of(0));
      } else {
        for (std::size_t s = 0; s < contacts; ++s) {
          const auto peer = static_cast<Address>(engine.rng().below(n));
          if (peer != a) seeds.push_back(engine.descriptor_of(peer));
        }
      }
      proto(a).init_view(std::move(seeds));
      engine.start_node(a);
    }
  }

  NewscastProtocol& proto(Address a) {
    return dynamic_cast<NewscastProtocol&>(engine.protocol(a, 0));  // test-only checked cast
  }

  void run_cycles(std::size_t cycles, SimTime period = kDelta) {
    engine.run_until(engine.now() + cycles * period);
  }
};

TEST(Newscast, ViewNeverExceedsConfiguredSize) {
  NewscastConfig cfg;
  cfg.view_size = 8;
  NewscastNet net(64, 1, cfg);
  net.run_cycles(20);
  for (Address a = 0; a < 64; ++a) {
    EXPECT_LE(net.proto(a).view().size(), 8u);
  }
}

TEST(Newscast, ViewNeverContainsSelfOrDuplicates) {
  NewscastNet net(128, 2);
  net.run_cycles(15);
  for (Address a = 0; a < 128; ++a) {
    std::set<Address> seen;
    for (const auto& e : net.proto(a).view()) {
      EXPECT_NE(e.descriptor.addr, a);
      EXPECT_TRUE(seen.insert(e.descriptor.addr).second);
    }
  }
}

TEST(Newscast, ViewsFillUp) {
  NewscastConfig cfg;
  cfg.view_size = 20;
  NewscastNet net(256, 3, cfg);
  net.run_cycles(15);
  for (Address a = 0; a < 256; ++a) {
    EXPECT_GE(net.proto(a).view().size(), 18u);
  }
}

TEST(Newscast, SampleReturnsDistinctPeersNotSelf) {
  NewscastNet net(128, 4);
  net.run_cycles(10);
  auto samples = net.proto(5).sample(10);
  EXPECT_GE(samples.size(), 5u);
  std::set<Address> seen;
  for (const auto& d : samples) {
    EXPECT_NE(d.addr, 5u);
    EXPECT_TRUE(seen.insert(d.addr).second);
  }
}

TEST(Newscast, SampleZeroAndOversized) {
  NewscastNet net(32, 5);
  net.run_cycles(5);
  EXPECT_TRUE(net.proto(0).sample(0).empty());
  const auto all = net.proto(0).sample(1000);
  EXPECT_EQ(all.size(), net.proto(0).view().size());
}

TEST(Newscast, GraphStaysConnectedAndBalanced) {
  NewscastNet net(1024, 6);
  net.run_cycles(20);
  const auto stats = measure_view_graph(net.engine, SlotRef<NewscastProtocol>::assume(0));
  EXPECT_EQ(stats.components, 1u);
  EXPECT_EQ(stats.alive_nodes, 1024u);
  // In-degree should concentrate near the view size; a random graph with
  // mean m has stddev ~ sqrt(m). Allow generous slack.
  EXPECT_GT(stats.indegree_mean, 15.0);
  EXPECT_LT(stats.indegree_stddev, stats.indegree_mean);
  EXPECT_LT(stats.clustering, 0.3);
}

TEST(Newscast, RandomizesFromDegenerateStarInit) {
  // Every node starts knowing only node 0 ("all nodes have the same
  // samples"); the protocol must still mix into a balanced random graph.
  NewscastNet net(512, 7, {}, 5, /*star_init=*/true);
  net.run_cycles(25);
  const auto stats = measure_view_graph(net.engine, SlotRef<NewscastProtocol>::assume(0));
  EXPECT_EQ(stats.components, 1u);
  // Node 0 must no longer dominate in-degrees.
  EXPECT_LT(static_cast<double>(stats.indegree_max), 6.0 * stats.indegree_mean);
}

TEST(Newscast, SelfHealsAfterCatastrophicFailure) {
  NewscastNet net(1024, 8);
  net.run_cycles(10);
  schedule_catastrophe(net.engine, net.engine.now(), 0.7);
  net.run_cycles(25);
  const auto stats = measure_view_graph(net.engine, SlotRef<NewscastProtocol>::assume(0));
  EXPECT_EQ(stats.alive_nodes, 308u);  // 1024 - 716
  EXPECT_EQ(stats.components, 1u);
  // Dead entries age out of the views.
  EXPECT_LT(stats.dead_entry_fraction, 0.05);
}

TEST(Newscast, FreshestEntryWinsOnMerge) {
  // Direct unit check of the merge rule via two nodes exchanging.
  NewscastConfig cfg;
  cfg.view_size = 4;
  NewscastNet net(2, 9, cfg, 1);
  net.run_cycles(3);
  // Each view holds the other node with an up-to-date timestamp.
  for (Address a = 0; a < 2; ++a) {
    ASSERT_EQ(net.proto(a).view().size(), 1u);
    EXPECT_GT(net.proto(a).view()[0].timestamp, 0u);
  }
}

TEST(Newscast, TrafficIsOneExchangePerNodePerCycle) {
  NewscastNet net(256, 10);
  net.engine.reset_traffic();
  net.run_cycles(10);
  const auto& t = net.engine.traffic();
  // 256 nodes x 10 cycles x (request + answer) = 5120 messages; allow a bit
  // of slack for edge-of-window timers.
  EXPECT_NEAR(static_cast<double>(t.messages_sent), 5120.0, 300.0);
}

}  // namespace
}  // namespace bsvc
