// The observability layer: metrics registry semantics, engine trace hooks,
// the periodic sampler, and the determinism guarantees the layer advertises
// (installing sinks/samplers never perturbs the simulation; JSONL traces are
// byte-stable for a fixed seed whatever the bench thread count).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace bsvc {
namespace {

using obs::MetricsRegistry;
using obs::TraceKind;

// --- registry ----------------------------------------------------------

TEST(Metrics, CounterSemantics) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("a.b");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same instance.
  reg.counter("a.b").inc();
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSemantics) {
  MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("x");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramSemantics) {
  MetricsRegistry reg;
  obs::HistogramMetric& h = reg.histogram("hops", 0.0, 10.0, 10);
  h.add(0.5);
  h.add(3.5);
  h.add(3.6);
  h.add(99.0);  // clamped into the last bucket
  h.add(-5.0);  // clamped into the first bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 3.5 + 3.6 + 99.0 - 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  // First registration fixes the bounds; later bounds are ignored.
  EXPECT_EQ(&reg.histogram("hops", 0.0, 1000.0, 3), &h);
  EXPECT_EQ(h.buckets(), 10u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(Metrics, NameCollisionAcrossKindsAborts) {
  MetricsRegistry reg;
  reg.counter("clash");
  EXPECT_DEATH(reg.gauge("clash"), "different kind");
}

TEST(Metrics, RegistryResetPreservesRegistrations) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  c.add(7);
  g.set(1.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.has("c"));
  // Handed-out references survive and read zero.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, SnapshotIsNameOrderedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("b.count").add(3);
  reg.gauge("a.gauge").set(0.25);
  reg.histogram("c.hist", 0.0, 4.0, 4).add(1.0);
  reg.histogram("c.hist", 0.0, 4.0, 4).add(3.0);
  std::vector<std::pair<std::string, double>> seen;
  reg.snapshot([&](const std::string& name, double v) { seen.emplace_back(name, v); });
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen[0].first, "a.gauge");
  EXPECT_DOUBLE_EQ(seen[0].second, 0.25);
  EXPECT_EQ(seen[1].first, "b.count");
  EXPECT_DOUBLE_EQ(seen[1].second, 3.0);
  EXPECT_EQ(seen[2].first, "c.hist.count");
  EXPECT_DOUBLE_EQ(seen[2].second, 2.0);
  EXPECT_EQ(seen[3].first, "c.hist.mean");
  EXPECT_DOUBLE_EQ(seen[3].second, 2.0);
  EXPECT_EQ(seen[4].first, "c.hist.max");
  EXPECT_DOUBLE_EQ(seen[4].second, 3.0);
  EXPECT_EQ(seen[5].first, "c.hist.p50");
  EXPECT_EQ(seen[6].first, "c.hist.p95");
  EXPECT_EQ(seen[7].first, "c.hist.p99");
}

TEST(Metrics, HistogramQuantiles) {
  // One sample per unit-wide bucket: the interpolated quantile is exact.
  obs::HistogramMetric h(0.0, 100.0, 100);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram reads zero
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  // The extremes clamp to the observed min/max, not to bucket edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.5);
}

// --- engine hooks -------------------------------------------------------

class TaggedPayload final : public Payload {
 public:
  explicit TaggedPayload(bool request) : request_(request) {}
  std::size_t wire_bytes() const override { return 8; }
  const char* type_name() const override { return "tagged"; }
  const char* metric_tag() const override { return request_ ? "tagged.req" : "tagged.ans"; }

 private:
  bool request_;
};

class EchoProtocol final : public Protocol {
 public:
  void on_message(Context& ctx, Address from, const Payload& p) override {
    const auto& tp = dynamic_cast<const TaggedPayload&>(p);  // test-only checked cast
    if (tp.metric_tag() == std::string("tagged.req")) {
      ctx.send(from, std::make_unique<TaggedPayload>(false));
    }
  }
};

TEST(EngineTrace, HooksCoverMessageLifecycleAndNodeEvents) {
  Engine e(42);
  obs::MemoryTraceSink sink;
  e.set_trace_sink(&sink);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<EchoProtocol>());
  e.attach(b, std::make_unique<EchoProtocol>());
  e.start_node(a);
  e.start_node(b, 3);
  e.schedule_timer(a, 0, 7, 99);
  e.send_message(a, b, 0, std::make_unique<TaggedPayload>(true));
  e.run_all();
  e.kill_node(b);
  e.send_message(a, b, 0, std::make_unique<TaggedPayload>(true));
  e.run_all();

  EXPECT_EQ(sink.count(TraceKind::NodeStart), 2u);
  EXPECT_EQ(sink.count(TraceKind::NodeKill), 1u);
  EXPECT_EQ(sink.count(TraceKind::TimerFire), 1u);
  // Request + echoed answer, then the post-kill request.
  EXPECT_EQ(sink.count(TraceKind::Send), 3u);
  EXPECT_EQ(sink.count(TraceKind::Deliver), 2u);
  EXPECT_EQ(sink.count(TraceKind::DeadDest), 1u);
  EXPECT_EQ(sink.count(TraceKind::Drop), 0u);

  // Record fields: sends carry sender/peer/tag/bytes.
  for (const obs::TraceRecord& r : sink.records()) {
    if (r.kind != TraceKind::Send) continue;
    EXPECT_TRUE(r.node == a || r.node == b);
    EXPECT_EQ(r.aux, 8u + kUdpIpHeaderBytes);
    ASSERT_NE(r.tag, nullptr);
  }

  // Per-type counters follow metric_tag, not type_name.
  auto& m = e.metrics();
  EXPECT_EQ(m.counter("msg.sent.tagged.req").value(), 2u);
  EXPECT_EQ(m.counter("msg.sent.tagged.ans").value(), 1u);
  EXPECT_EQ(m.counter("msg.delivered.tagged.req").value(), 1u);
  EXPECT_EQ(m.counter("msg.delivered.tagged.ans").value(), 1u);
}

TEST(EngineTrace, DropsAreTraced) {
  TransportConfig t;
  t.drop_probability = 1.0;
  Engine e(7, t);
  obs::MemoryTraceSink sink;
  e.set_trace_sink(&sink);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<EchoProtocol>());
  e.attach(b, std::make_unique<EchoProtocol>());
  e.start_node(a);
  e.start_node(b);
  e.send_message(a, b, 0, std::make_unique<TaggedPayload>(true));
  e.run_all();
  EXPECT_EQ(sink.count(TraceKind::Send), 1u);
  EXPECT_EQ(sink.count(TraceKind::Drop), 1u);
  EXPECT_EQ(sink.count(TraceKind::Deliver), 0u);
  EXPECT_EQ(e.metrics().counter("msg.sent.tagged.req").value(), 1u);
  EXPECT_EQ(e.metrics().counter("msg.delivered.tagged.req").value(), 0u);
}

// --- sampler ------------------------------------------------------------

TEST(Sampler, SnapshotsOnCadenceWithProbes) {
  Engine e(5);
  obs::Sampler sampler(e);
  sampler.add_probe([](Engine& eng) {
    eng.metrics().gauge("probe.time").set(static_cast<double>(eng.now()));
  });
  sampler.start(/*first_delay=*/10, /*period=*/10);
  e.run_until(55);
  sampler.stop();
  e.run_until(200);  // further scheduled snapshots are no-ops after stop()

  EXPECT_EQ(sampler.samples(), 5u);
  const obs::MetricSeries& series = sampler.series();
  ASSERT_TRUE(series.by_name.count("probe.time"));
  const auto& points = series.by_name.at("probe.time");
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].first, 10u * (i + 1));
    EXPECT_DOUBLE_EQ(points[i].second, static_cast<double>(points[i].first));
  }
}

TEST(Sampler, DestructionBeforeScheduledCallbackIsSafe) {
  Engine e(5);
  {
    obs::Sampler sampler(e);
    sampler.start(10, 10);
  }
  e.run_until(100);  // queued closures hold the shared state; must not crash
}

// --- experiment integration --------------------------------------------

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = 128;
  cfg.seed = seed;
  cfg.max_cycles = 40;
  cfg.warmup_cycles = 3;
  return cfg;
}

TEST(ObsExperiment, SamplerExportsConvergenceSeries) {
  ExperimentConfig cfg = small_config(11);
  cfg.sample_every_cycles = 1;
  BootstrapExperiment exp(cfg);
  const ExperimentResult r = exp.run();
  ASSERT_FALSE(r.metric_series.empty());

  const auto& by_name = r.metric_series.by_name;
  ASSERT_TRUE(by_name.count("convergence.leaf_completeness"));
  ASSERT_TRUE(by_name.count("convergence.prefix_fill"));
  ASSERT_TRUE(by_name.count("msg.sent.bootstrap.request"));
  ASSERT_TRUE(by_name.count("msg.sent.newscast.request"));
  ASSERT_TRUE(by_name.count("bootstrap.requests"));
  ASSERT_TRUE(by_name.count("newscast.indegree_mean"));

  // The paper's Fig. 3 shape from registry data alone: completeness starts
  // below 1 and reaches 1 by the converged cycle; sent counters are
  // monotone.
  const auto& leaf = by_name.at("convergence.leaf_completeness");
  ASSERT_GE(leaf.size(), 2u);
  EXPECT_LT(leaf.front().second, 1.0);
  EXPECT_DOUBLE_EQ(leaf.back().second, 1.0);
  const auto& sent = by_name.at("msg.sent.bootstrap.request");
  for (std::size_t i = 1; i < sent.size(); ++i) {
    EXPECT_GE(sent[i].second, sent[i - 1].second);
  }
  // One sample per simulated cycle.
  EXPECT_EQ(leaf.size(), r.series.rows());
}

TEST(ObsExperiment, SamplingAndTracingDoNotPerturbResults) {
  const ExperimentResult plain = [] {
    BootstrapExperiment exp(small_config(23));
    return exp.run();
  }();
  ExperimentConfig cfg = small_config(23);
  cfg.sample_every_cycles = 1;
  cfg.trace_path = "/dev/null";
  BootstrapExperiment exp(cfg);
  const ExperimentResult observed = exp.run();

  EXPECT_EQ(plain.converged_cycle, observed.converged_cycle);
  EXPECT_EQ(plain.traffic_during_bootstrap.messages_sent,
            observed.traffic_during_bootstrap.messages_sent);
  EXPECT_EQ(plain.traffic_during_bootstrap.bytes_sent,
            observed.traffic_during_bootstrap.bytes_sent);
  EXPECT_EQ(plain.bootstrap_stats.requests_sent, observed.bootstrap_stats.requests_sent);
  ASSERT_EQ(plain.series.rows(), observed.series.rows());
  for (std::size_t r = 0; r < plain.series.rows(); ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(plain.series.at(r, c), observed.series.at(r, c));
    }
  }
}

// --- exchange spans -----------------------------------------------------

TEST(Spans, EnablingSpansDoesNotPerturbTheRun) {
  const ExperimentResult plain = [] {
    BootstrapExperiment exp(small_config(29));
    return exp.run();
  }();
  ExperimentConfig cfg = small_config(29);
  cfg.spans = true;
  BootstrapExperiment exp(cfg);
  const ExperimentResult spanned = exp.run();

  EXPECT_EQ(plain.converged_cycle, spanned.converged_cycle);
  EXPECT_EQ(plain.traffic_during_bootstrap.messages_sent,
            spanned.traffic_during_bootstrap.messages_sent);
  EXPECT_EQ(plain.traffic_during_bootstrap.bytes_sent,
            spanned.traffic_during_bootstrap.bytes_sent);
  EXPECT_FALSE(plain.has_spans);
  ASSERT_TRUE(spanned.has_spans);
  EXPECT_GT(spanned.span_summary.opened, 0u);
}

// The lifecycle invariants every span must satisfy, checked on a summary.
void expect_span_invariants(const obs::SpanSummary& s, std::size_t n) {
  // Every close matched an open span: nothing closed twice or out of thin
  // air, and outcomes partition the closed set.
  EXPECT_EQ(s.stray_closes, 0u);
  EXPECT_EQ(s.answered + s.timeout + s.superseded + s.evicted, s.closed);
  ASSERT_GE(s.opened, s.closed);
  EXPECT_EQ(s.opened - s.closed, s.in_flight);
  // At most one exchange is open per node at any instant, so at run end at
  // most n spans can still be in flight.
  EXPECT_LE(s.in_flight, n);
  EXPECT_EQ(s.overflow_dropped, 0u);
  EXPECT_EQ(s.rtt_count, s.answered);
}

TEST(Spans, CleanRunClosesEverySpanAnswered) {
  ExperimentConfig cfg = small_config(31);
  cfg.spans = true;
  BootstrapExperiment exp(cfg);
  const ExperimentResult r = exp.run();
  ASSERT_TRUE(r.has_spans);
  const obs::SpanSummary& s = r.span_summary;
  expect_span_invariants(s, cfg.n);
  EXPECT_GT(s.answered, 0u);
  EXPECT_GT(s.rtt_mean, 0.0);
  EXPECT_GE(s.rtt_p95, s.rtt_p50);
  EXPECT_GE(s.rtt_max, s.rtt_p99);
}

TEST(Spans, EverySpanClosesExactlyOnceUnderFaults) {
  // The hostile mix: sustained loss drives per-exchange timeouts, a
  // crash–recover wave drives eviction of condemned peers, and unanswered
  // probes that roll over to a new cycle get superseded. The invariants
  // must hold through all of it.
  ExperimentConfig cfg = small_config(37);
  cfg.spans = true;
  cfg.max_cycles = 30;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  const SimTime end = epoch + cfg.max_cycles * delta;
  cfg.fault_plan.link_loss.push_back({{epoch, end}, kNullAddress, kNullAddress, 0.3});
  cfg.fault_plan.crashes.push_back({{epoch + 4 * delta, epoch + 12 * delta},
                                    kNullAddress, 0.2});
  BootstrapExperiment exp(cfg);
  const ExperimentResult r = exp.run();
  ASSERT_TRUE(r.has_spans);
  const obs::SpanSummary& s = r.span_summary;
  expect_span_invariants(s, cfg.n);
  EXPECT_GT(s.answered, 0u);
  // 30% loss with timeouts on must kill some exchanges non-answered.
  EXPECT_GT(s.timeout + s.superseded + s.evicted, 0u);
  EXPECT_GT(s.drops, 0u);
}

TEST(Spans, SummaryIsIdenticalAcrossShardCounts) {
  // Span aggregation is commutative, so the summary must be byte-equal for
  // every K within the sharded family (same trajectory, different overlap).
  auto run_k = [](std::size_t k) {
    ExperimentConfig cfg = small_config(41);
    cfg.shards = k;
    cfg.spans = true;
    BootstrapExperiment exp(cfg);
    return exp.run();
  };
  const ExperimentResult k1 = run_k(1);
  ASSERT_TRUE(k1.has_spans);
  EXPECT_GT(k1.span_summary.opened, 0u);
  for (const std::size_t k : {2u, 4u}) {
    const ExperimentResult rk = run_k(k);
    ASSERT_TRUE(rk.has_spans);
    const obs::SpanSummary& a = k1.span_summary;
    const obs::SpanSummary& b = rk.span_summary;
    EXPECT_EQ(a.opened, b.opened) << "K=" << k;
    EXPECT_EQ(a.closed, b.closed) << "K=" << k;
    EXPECT_EQ(a.answered, b.answered) << "K=" << k;
    EXPECT_EQ(a.timeout, b.timeout) << "K=" << k;
    EXPECT_EQ(a.superseded, b.superseded) << "K=" << k;
    EXPECT_EQ(a.evicted, b.evicted) << "K=" << k;
    EXPECT_EQ(a.sends, b.sends) << "K=" << k;
    EXPECT_EQ(a.drops, b.drops) << "K=" << k;
    EXPECT_EQ(a.delivers, b.delivers) << "K=" << k;
    EXPECT_EQ(a.dead_letters, b.dead_letters) << "K=" << k;
    EXPECT_EQ(a.rtt_count, b.rtt_count) << "K=" << k;
    EXPECT_EQ(a.rtt_mean, b.rtt_mean) << "K=" << k;
    EXPECT_EQ(a.rtt_p50, b.rtt_p50) << "K=" << k;
    EXPECT_EQ(a.rtt_p95, b.rtt_p95) << "K=" << k;
    EXPECT_EQ(a.rtt_p99, b.rtt_p99) << "K=" << k;
    EXPECT_EQ(a.hops_mean, b.hops_mean) << "K=" << k;
    EXPECT_EQ(a.retries_mean, b.retries_mean) << "K=" << k;
  }
}

TEST(Sampler, SeriesIsIdenticalAcrossShardCounts) {
  // The sampled metric series must not depend on K either — shard.* gauges
  // are the one deliberate exception (they describe the engine itself).
  auto run_k = [](std::size_t k) {
    ExperimentConfig cfg = small_config(43);
    cfg.shards = k;
    cfg.sample_every_cycles = 1;
    BootstrapExperiment exp(cfg);
    return exp.run();
  };
  const ExperimentResult k1 = run_k(1);
  ASSERT_FALSE(k1.metric_series.empty());
  for (const std::size_t k : {2u, 4u}) {
    const ExperimentResult rk = run_k(k);
    ASSERT_EQ(k1.metric_series.by_name.size(), rk.metric_series.by_name.size());
    for (const auto& [name, points] : k1.metric_series.by_name) {
      if (name.rfind("shard.", 0) == 0) continue;
      const auto it = rk.metric_series.by_name.find(name);
      ASSERT_NE(it, rk.metric_series.by_name.end()) << name;
      ASSERT_EQ(points.size(), it->second.size()) << name;
      for (std::size_t p = 0; p < points.size(); ++p) {
        EXPECT_EQ(points[p].first, it->second[p].first) << name << " @" << p;
        EXPECT_EQ(points[p].second, it->second[p].second)
            << name << " @" << p << " K=" << k;
      }
    }
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ObsExperiment, TraceFilesAreByteIdenticalAcrossThreadCounts) {
  // The same seeds traced sequentially and on a thread pool must produce
  // byte-identical JSONL (each replica owns its engine and its file).
  const std::string dir = ::testing::TempDir();
  const auto run_with = [&](const std::string& tag, std::size_t threads) {
    std::vector<std::uint64_t> seeds{31, 32, 33};
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      paths.push_back(dir + "/trace_" + tag + "_" + std::to_string(i) + ".jsonl");
    }
    parallel_map(seeds, threads, [&](std::uint64_t seed, std::size_t i) {
      ExperimentConfig cfg = small_config(seed);
      cfg.max_cycles = 10;
      cfg.stop_at_convergence = false;
      cfg.trace_path = paths[i];
      BootstrapExperiment exp(cfg);
      exp.run();
      return 0;
    });
    return paths;
  };
  const auto seq = run_with("seq", 1);
  const auto par = run_with("par", 3);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::string a = slurp(seq[i]);
    const std::string b = slurp(par[i]);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "replica " << i;
    std::remove(seq[i].c_str());
    std::remove(par[i].c_str());
  }
}

TEST(JsonlSink, WritesParseableRecords) {
  const std::string path = ::testing::TempDir() + "/jsonl_records.jsonl";
  {
    obs::JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    obs::TraceRecord r;
    r.time = 12;
    r.kind = TraceKind::Send;
    r.node = 1;
    r.peer = 2;
    r.slot = 0;
    r.tag = "x.req";
    r.aux = 36;
    sink.record(r);
    r.kind = TraceKind::NodeKill;
    r.node = 7;
    sink.record(r);
  }
  const std::string text = slurp(path);
  EXPECT_EQ(text,
            "{\"t\":12,\"k\":\"send\",\"n\":1,\"p\":2,\"s\":0,\"m\":\"x.req\",\"b\":36}\n"
            "{\"t\":12,\"k\":\"kill\",\"n\":7}\n");
  std::remove(path.c_str());
}

TEST(JsonlSink, UnwritablePathDisablesSink) {
  obs::JsonlTraceSink sink("/nonexistent-dir-xyz/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  obs::TraceRecord r;
  sink.record(r);  // must not crash
}

}  // namespace
}  // namespace bsvc
