#include "core/oracle.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace bsvc {
namespace {

ExperimentConfig base_config(std::size_t n, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.max_cycles = 80;
  return cfg;
}

TEST(Oracle, EverythingMissingBeforeActivation) {
  BootstrapExperiment exp(base_config(64, 1));
  // Before run(): protocols exist but have not initialized tables.
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  const auto m = oracle.measure();
  EXPECT_GT(m.leaf_perfect, 0u);
  EXPECT_GT(m.prefix_perfect, 0u);
  EXPECT_EQ(m.leaf_present, 0u);
  EXPECT_EQ(m.prefix_present, 0u);
  EXPECT_DOUBLE_EQ(m.missing_leaf_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(m.missing_prefix_fraction(), 1.0);
  EXPECT_FALSE(m.converged());
}

TEST(Oracle, ZeroMissingAtConvergence) {
  BootstrapExperiment exp(base_config(256, 2));
  const auto result = exp.run();
  ASSERT_GE(result.converged_cycle, 0);
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  const auto m = oracle.measure();
  EXPECT_TRUE(m.converged());
  EXPECT_EQ(m.leaf_present, m.leaf_perfect);
  EXPECT_EQ(m.prefix_present, m.prefix_perfect);
}

TEST(Oracle, MetricsDecreaseOverTime) {
  BootstrapExperiment exp(base_config(512, 3));
  std::vector<double> leaf_curve, prefix_curve;
  exp.run([&](std::size_t, const ConvergenceMetrics& m) {
    leaf_curve.push_back(m.missing_leaf_fraction());
    prefix_curve.push_back(m.missing_prefix_fraction());
  });
  ASSERT_GE(leaf_curve.size(), 5u);
  // Not necessarily monotone cycle-by-cycle, but must collapse overall.
  EXPECT_GT(leaf_curve.front(), 0.5);
  EXPECT_EQ(leaf_curve.back(), 0.0);
  EXPECT_EQ(prefix_curve.back(), 0.0);
  // Front half strictly above back half on average.
  const auto mean = [](const std::vector<double>& v, std::size_t from, std::size_t to) {
    double s = 0.0;
    for (std::size_t i = from; i < to; ++i) s += v[i];
    return s / static_cast<double>(to - from);
  };
  EXPECT_GT(mean(leaf_curve, 0, leaf_curve.size() / 2),
            mean(leaf_curve, leaf_curve.size() / 2, leaf_curve.size()));
}

TEST(Oracle, PerfectLeafIdsMatchMembership) {
  BootstrapExperiment exp(base_config(64, 4));
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  const auto& members = oracle.sorted_members();
  ASSERT_EQ(members.size(), 64u);
  const auto ids = oracle.perfect_leaf_ids(members[10].addr);
  EXPECT_EQ(ids.size(), exp.config().bootstrap.c);
  // All perfect entries are real member IDs, none is the node itself.
  for (const NodeId id : ids) {
    EXPECT_NE(id, members[10].id);
    bool found = false;
    for (const auto& m : members) found |= m.id == id;
    EXPECT_TRUE(found);
  }
}

TEST(Oracle, LivenessCheckDiscountsDeadEntries) {
  BootstrapExperiment exp(base_config(256, 5));
  const auto result = exp.run();
  ASSERT_GE(result.converged_cycle, 0);
  // Kill a quarter of the nodes; entries pointing at them become stale.
  auto& engine = exp.engine();
  for (Address a = 0; a < 64; ++a) engine.kill_node(a);
  const ConvergenceOracle oracle(engine, exp.config().bootstrap, exp.bootstrap_slot());
  const auto strict = oracle.measure(/*check_liveness=*/true);
  const auto lax = oracle.measure(/*check_liveness=*/false);
  // The lax count includes dead entries, the strict one does not.
  EXPECT_LE(strict.prefix_present, lax.prefix_present);
  EXPECT_GT(strict.missing_prefix_fraction(), 0.0);
  // Leaf metric naturally discounts dead perfect-entries (they are no longer
  // perfect once the membership shrank).
  EXPECT_GT(strict.leaf_perfect, 0u);
}

TEST(Oracle, OwnerLookupAgreesWithPerfectTables) {
  BootstrapExperiment exp(base_config(128, 6));
  const ConvergenceOracle oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const NodeId key = rng.next_u64();
    EXPECT_EQ(oracle.owner_of(key).id, oracle.perfect().owner_of(key).id);
  }
}

}  // namespace
}  // namespace bsvc
