// Thread-pool and parallel-map semantics that the replica harness leans on:
// full coverage of the index range, results in input order, exception
// propagation, and graceful handling of degenerate shapes (zero items, more
// threads than items, single thread).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace bsvc {
namespace {

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1u); }

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 16u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), threads,
                 [&hits](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(hits.size(), 64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("item 37 failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ReportsLowestFailingIndexDeterministically) {
  // Several items throw; the rethrown exception must always be the lowest
  // index so failures are reproducible regardless of scheduling.
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      parallel_for(64, 8, [](std::size_t i) {
        if (i % 13 == 5) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "5");
    }
  }
}

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  for (const std::size_t threads : {1u, 4u}) {
    const auto squares = parallel_map(items, threads, [](int v, std::size_t idx) {
      EXPECT_EQ(static_cast<std::size_t>(v), idx);
      return v * v;
    });
    ASSERT_EQ(squares.size(), items.size());
    for (int v : items) EXPECT_EQ(squares[static_cast<std::size_t>(v)], v * v);
  }
}

TEST(ParallelMap, EmptyInput) {
  const std::vector<int> none;
  const auto out = parallel_map(none, 4, [](int v, std::size_t) { return v; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, NonTrivialResultType) {
  const std::vector<int> items{3, 1, 2};
  const auto out = parallel_map(
      items, 2, [](int v, std::size_t) { return std::string(static_cast<std::size_t>(v), 'x'); });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "xxx");
  EXPECT_EQ(out[1], "x");
  EXPECT_EQ(out[2], "xx");
}

TEST(WindowCrew, EveryLaneRunsExactlyOncePerRound) {
  WindowCrew crew(4);
  EXPECT_EQ(crew.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  const std::function<void(std::size_t)> job = [&hits](std::size_t lane) {
    hits[lane].fetch_add(1, std::memory_order_relaxed);
  };
  for (int round = 0; round < 100; ++round) crew.run(job);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 100);
}

TEST(WindowCrew, RunIsABarrier) {
  // Work left behind by a round must be complete when run() returns, for
  // every lane — the engine reads shard state right after the call.
  WindowCrew crew(3);
  std::vector<std::uint64_t> sums(3, 0);
  const std::function<void(std::size_t)> job = [&sums](std::size_t lane) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i <= 10000; ++i) acc += i;
    sums[lane] = acc;
  };
  crew.run(job);
  for (const auto s : sums) EXPECT_EQ(s, 50005000u);
}

TEST(WindowCrew, SizeOneRunsInline) {
  WindowCrew crew(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  const std::function<void(std::size_t)> job = [&seen, caller](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    seen = std::this_thread::get_id();
  };
  crew.run(job);
  EXPECT_EQ(seen, caller);
}

TEST(WindowCrew, TimingRecordsPerLaneWork) {
  // With timing on, every lane's wall time for the round is readable after
  // the run() barrier; lanes that do real work read > 0.
  for (const std::size_t size : {1u, 3u}) {
    WindowCrew crew(size);
    EXPECT_FALSE(crew.timing());
    crew.set_timing(true);
    EXPECT_TRUE(crew.timing());
    std::vector<std::uint64_t> sums(size, 0);
    const std::function<void(std::size_t)> job = [&sums](std::size_t lane) {
      std::uint64_t acc = 0;
      for (std::uint64_t i = 0; i <= 200000; ++i) acc += i * i;
      sums[lane] = acc;
    };
    crew.run(job);
    const std::vector<std::uint64_t>& ns = crew.last_lane_ns();
    ASSERT_EQ(ns.size(), size);
    for (std::size_t lane = 0; lane < size; ++lane) {
      EXPECT_GT(ns[lane], 0u) << "lane " << lane << " crew size " << size;
    }
    // Turning timing back off stops the stamping (stale values remain).
    crew.set_timing(false);
    EXPECT_FALSE(crew.timing());
    crew.run(job);
  }
}

}  // namespace
}  // namespace bsvc
