// Determinism and equivalence suite for the sharded conservative-time-window
// engine (Engine shards >= 1).
//
// The sharded engine is a second engine *family*, not a reordering of the
// serial one: transport randomness moves from the engine stream to per-node
// streams and same-tick ordering is content-addressed, so sharded
// trajectories differ from serial ones at matched seeds — by design.
// What IS guaranteed, and what this suite pins down:
//
//  - within the family, the trajectory is identical for EVERY shard count
//    (K = 1 runs the same semantics inline and is the golden reference);
//  - a fixed (seed, K) is bit-reproducible across repeated runs, whatever
//    the thread scheduler does;
//  - fault plans (partitions, crash-recover, loss/dup) and Byzantine
//    tampering produce identical outcomes across shard counts, because every
//    verdict draw comes from the sending node's own stream;
//  - serial and sharded runs agree qualitatively: same protocol, same
//    convergence behavior at matched configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "adversary/byzantine_model.hpp"
#include "core/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "sim/engine.hpp"

namespace bsvc {
namespace {

ExperimentConfig small_config(std::size_t shards) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 42;
  cfg.shards = shards;
  cfg.max_cycles = 40;
  cfg.drop_probability = 0.1;
  return cfg;
}

ExperimentResult run_one(const ExperimentConfig& cfg) {
  BootstrapExperiment exp(cfg);
  return exp.run();
}

/// Bit-exact equality of everything an experiment reports. Doubles are
/// compared with EXPECT_EQ on purpose: determinism means identical
/// computations in identical order, not "close".
void expect_same_result(const ExperimentResult& a, const ExperimentResult& b,
                        const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.converged_cycle, b.converged_cycle);
  EXPECT_EQ(a.leaf_converged_cycle, b.leaf_converged_cycle);
  EXPECT_EQ(a.prefix_converged_cycle, b.prefix_converged_cycle);
  ASSERT_EQ(a.series.rows(), b.series.rows());
  for (std::size_t r = 0; r < a.series.rows(); ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(a.series.at(r, c), b.series.at(r, c)) << "row " << r << " col " << c;
    }
  }
  EXPECT_EQ(a.bootstrap_stats.requests_sent, b.bootstrap_stats.requests_sent);
  EXPECT_EQ(a.bootstrap_stats.replies_sent, b.bootstrap_stats.replies_sent);
  EXPECT_EQ(a.bootstrap_stats.messages_received, b.bootstrap_stats.messages_received);
  EXPECT_EQ(a.bootstrap_stats.entries_sent, b.bootstrap_stats.entries_sent);
  EXPECT_EQ(a.bootstrap_stats.payload_bytes_sent, b.bootstrap_stats.payload_bytes_sent);
  EXPECT_EQ(a.bootstrap_stats.max_message_bytes, b.bootstrap_stats.max_message_bytes);
  EXPECT_EQ(a.bootstrap_stats.select_peer_empty, b.bootstrap_stats.select_peer_empty);
  EXPECT_EQ(a.traffic_during_bootstrap.messages_sent, b.traffic_during_bootstrap.messages_sent);
  EXPECT_EQ(a.traffic_during_bootstrap.messages_dropped,
            b.traffic_during_bootstrap.messages_dropped);
  EXPECT_EQ(a.traffic_during_bootstrap.messages_to_dead,
            b.traffic_during_bootstrap.messages_to_dead);
  EXPECT_EQ(a.traffic_during_bootstrap.messages_delivered,
            b.traffic_during_bootstrap.messages_delivered);
  EXPECT_EQ(a.traffic_during_bootstrap.messages_duplicated,
            b.traffic_during_bootstrap.messages_duplicated);
  EXPECT_EQ(a.traffic_during_bootstrap.bytes_sent, b.traffic_during_bootstrap.bytes_sent);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.avg_message_bytes, b.avg_message_bytes);
  EXPECT_EQ(a.max_message_bytes, b.max_message_bytes);
  EXPECT_EQ(a.final_metrics.missing_leaf_fraction(), b.final_metrics.missing_leaf_fraction());
  EXPECT_EQ(a.final_metrics.missing_prefix_fraction(),
            b.final_metrics.missing_prefix_fraction());
}

// --- shard-count independence -------------------------------------------

TEST(ParallelEngine, ShardCountsConvergeToSameOracleMetrics) {
  const ExperimentResult reference = run_one(small_config(1));
  ASSERT_GE(reference.converged_cycle, 0) << "K=1 reference did not converge";
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const ExperimentResult result = run_one(small_config(k));
    expect_same_result(reference, result, ("K=" + std::to_string(k)).c_str());
  }
}

TEST(ParallelEngine, FixedSeedAndShardCountIsBitReproducible) {
  // Repeated runs of the same (seed, K) spawn fresh worker crews each time;
  // any dependence on thread interleaving shows up as a diff here.
  const ExperimentResult first = run_one(small_config(4));
  for (int repeat = 0; repeat < 2; ++repeat) {
    const ExperimentResult again = run_one(small_config(4));
    expect_same_result(first, again, ("repeat " + std::to_string(repeat)).c_str());
  }
}

TEST(ParallelEngine, SerialAndShardedAgreeQualitatively) {
  // The families make different transport draws at matched seeds, so exact
  // equality is not expected — but both run the identical protocol and must
  // both bootstrap the identical network.
  const ExperimentResult serial = run_one(small_config(0));
  const ExperimentResult sharded = run_one(small_config(4));
  ASSERT_GE(serial.converged_cycle, 0);
  ASSERT_GE(sharded.converged_cycle, 0);
  EXPECT_EQ(serial.n, sharded.n);
  EXPECT_EQ(serial.final_metrics.missing_leaf_fraction(), 0.0);
  EXPECT_EQ(sharded.final_metrics.missing_leaf_fraction(), 0.0);
  // Same protocol and load profile: traffic volumes land in the same
  // ballpark even though individual draws differ.
  const auto serial_msgs = static_cast<double>(serial.traffic_during_bootstrap.messages_sent);
  const auto sharded_msgs =
      static_cast<double>(sharded.traffic_during_bootstrap.messages_sent);
  EXPECT_GT(sharded_msgs, 0.5 * serial_msgs);
  EXPECT_LT(sharded_msgs, 2.0 * serial_msgs);
}

// --- fault plans across shard counts ------------------------------------

ExperimentConfig faulted_config(std::size_t shards) {
  ExperimentConfig cfg = small_config(shards);
  // Windows are absolute virtual time; warmup is 10 cycles of delta = 1000.
  PartitionSpec part;
  part.window = {12000, 18000};
  part.kind = PartitionSpec::Kind::Cut;
  part.value = 128;
  cfg.fault_plan.partitions.push_back(part);
  LinkLossSpec loss;
  loss.window = {11000, 25000};
  loss.drop_probability = 0.2;
  cfg.fault_plan.link_loss.push_back(loss);
  DuplicateSpec dup;
  dup.window = {11000, 30000};
  dup.probability = 0.05;
  cfg.fault_plan.duplicates.push_back(dup);
  CrashSpec crash;
  crash.addr = 3;
  crash.window = {13000, 16000};
  cfg.fault_plan.crashes.push_back(crash);
  CrashSpec fractional;
  fractional.addr = kNullAddress;
  fractional.fraction = 0.05;
  fractional.window = {14000, 17000};
  cfg.fault_plan.crashes.push_back(fractional);
  return cfg;
}

TEST(ParallelEngine, FaultPlanOutcomesIdenticalAcrossShardCounts) {
  const ExperimentResult reference = run_one(faulted_config(1));
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const ExperimentResult result = run_one(faulted_config(k));
    expect_same_result(reference, result, ("faulted K=" + std::to_string(k)).c_str());
  }
}

// --- Byzantine tampering across shard counts ----------------------------

AdversaryPlan byzantine_plan() {
  AdversaryPlan plan;
  plan.seed = 7;
  plan.fraction = 0.05;
  plan.window = {11000, 0};
  plan.poison = true;
  plan.eclipse = true;
  plan.spoof = true;
  plan.suppress_probability = 0.1;
  plan.corrupt_probability = 0.02;
  return plan;
}

struct AdversaryOutcome {
  ExperimentResult result;
  std::uint64_t poisoned = 0;
  std::uint64_t eclipsed = 0;
  std::uint64_t spoofed = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t corrupted = 0;
};

AdversaryOutcome run_byzantine(std::size_t shards) {
  BootstrapExperiment exp(small_config(shards));
  const auto model = install_adversary_plan(exp.engine(), byzantine_plan());
  AdversaryOutcome out;
  out.result = exp.run();
  obs::MetricsRegistry& m = exp.engine().metrics();
  out.poisoned = m.counter("adv.poisoned").value();
  out.eclipsed = m.counter("adv.eclipsed").value();
  out.spoofed = m.counter("adv.spoofed").value();
  out.suppressed = m.counter("adv.suppressed").value();
  out.corrupted = m.counter("adv.corrupted").value();
  return out;
}

TEST(ParallelEngine, ByzantineTamperingIdenticalAcrossShardCounts) {
  const AdversaryOutcome reference = run_byzantine(1);
  // A plan this aggressive must actually fire for the comparison to mean
  // anything.
  EXPECT_GT(reference.poisoned + reference.eclipsed + reference.spoofed +
                reference.suppressed + reference.corrupted,
            0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const AdversaryOutcome other = run_byzantine(k);
    expect_same_result(reference.result, other.result,
                       ("byzantine K=" + std::to_string(k)).c_str());
    EXPECT_EQ(reference.poisoned, other.poisoned);
    EXPECT_EQ(reference.eclipsed, other.eclipsed);
    EXPECT_EQ(reference.spoofed, other.spoofed);
    EXPECT_EQ(reference.suppressed, other.suppressed);
    EXPECT_EQ(reference.corrupted, other.corrupted);
  }
}

// --- shard observability and gating -------------------------------------

TEST(ParallelEngine, ShardMetricsAreRegistered) {
  BootstrapExperiment exp(small_config(4));
  exp.run();
  obs::MetricsRegistry& m = exp.engine().metrics();
  EXPECT_EQ(m.gauge("shard.count").value(), 4.0);
  EXPECT_GT(m.counter("shard.windows").value(), 0u);
  // 256 nodes over 4 shards exchange constantly; some of that traffic must
  // cross shard boundaries.
  EXPECT_GT(m.counter("shard.mailbox.messages").value(), 0u);
  EXPECT_GT(m.histogram("shard.window_events", 0.0, 4096.0, 64).count(), 0u);
}

TEST(ParallelEngineDeathTest, OracleSamplerIsRejectedInShardedMode) {
  ExperimentConfig cfg = small_config(2);
  cfg.sampler = SamplerKind::Oracle;
  // The oracle sampler reads global engine state from inside node callbacks,
  // which has no meaning inside a shard window; setup must refuse loudly.
  EXPECT_EXIT(BootstrapExperiment exp(cfg), testing::ExitedWithCode(2),
              "incompatible with sharded execution");
}

TEST(ParallelEngineDeathTest, ProfilerIsRejectedInSerialMode) {
  ExperimentConfig cfg = small_config(0);
  cfg.profile_path = ::testing::TempDir() + "/rejected_prof.json";
  // The profiler measures the window crew; the serial engine has none, so
  // setup must refuse with a clear config error instead of writing an empty
  // trace.
  EXPECT_EXIT(BootstrapExperiment exp(cfg), testing::ExitedWithCode(2),
              "requires the sharded engine");
}

TEST(ParallelEngine, ProfilerAccountsWindowsAndWritesTrace) {
  const std::string path = ::testing::TempDir() + "/bsvc_prof.json";
  ExperimentConfig cfg = small_config(2);
  cfg.profile_path = path;
  BootstrapExperiment exp(cfg);
  const ExperimentResult r = exp.run();
  ASSERT_TRUE(r.has_profile);
  const obs::ProfileSummary& p = r.profile_summary;
  EXPECT_EQ(p.shards, 2u);
  EXPECT_GT(p.windows, 0u);
  EXPECT_GT(p.events, 0u);
  EXPECT_GT(p.wall_seconds, 0.0);
  EXPECT_GT(p.trace_events, 0u);
  EXPECT_EQ(p.trace_events_dropped, 0u);
  // The four phases partition each shard's window wall exactly, so their
  // totals must cover shards x wall (double rounding aside).
  const double phases =
      p.dispatch_seconds + p.drain_seconds + p.stall_seconds + p.idle_seconds;
  const double expected = p.wall_seconds * static_cast<double>(p.shards);
  EXPECT_NEAR(phases, expected, 1e-6 * expected + 1e-12);
  EXPECT_GE(p.barrier_stall_fraction, 0.0);
  EXPECT_LE(p.barrier_stall_fraction, 1.0);

  // The written trace is the object form with the aggregate section; full
  // structural validation lives in scripts/check_profile.py.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  const std::string trace = text.str();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"bsvc_profile\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ParallelEngine, ProfilerDoesNotPerturbTheRun) {
  const std::string path = ::testing::TempDir() + "/bsvc_prof_perturb.json";
  const ExperimentResult plain = run_one(small_config(2));
  ExperimentConfig cfg = small_config(2);
  cfg.profile_path = path;
  const ExperimentResult profiled = run_one(cfg);
  expect_same_result(plain, profiled, "profiled");
  std::remove(path.c_str());
}

TEST(ParallelEngineDeathTest, ZeroLookaheadIsRejected) {
  TransportConfig transport;
  transport.min_latency = 0;
  transport.max_latency = 0;
  EXPECT_DEATH(Engine(1, transport, 2), "min_latency");
}

// --- engine-level window mechanics --------------------------------------

TEST(ParallelEngine, ShardedClockSettlesLikeSerial) {
  Engine serial(9);
  Engine sharded(9, TransportConfig{}, 2);
  serial.run_until(12345);
  sharded.run_until(12345);
  EXPECT_EQ(serial.now(), 12345u);
  EXPECT_EQ(sharded.now(), 12345u);
}

TEST(ParallelEngine, ScheduledCallsRunAtBarriersInOrder) {
  Engine engine(11, TransportConfig{}, 4);
  std::vector<int> order;
  engine.schedule_call(500, [&order](Engine&) { order.push_back(1); });
  engine.schedule_call(500, [&order](Engine&) { order.push_back(2); });
  engine.schedule_call(100, [&order](Engine& e) {
    order.push_back(0);
    e.schedule_call(0, [&order](Engine&) { order.push_back(-1); });
  });
  engine.run_until(1000);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], -1);  // zero-delay call runs at the same barrier
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
}

}  // namespace
}  // namespace bsvc
