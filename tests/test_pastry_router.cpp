#include "overlay/pastry_router.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"

namespace bsvc {
namespace {

struct ConvergedNet {
  BootstrapExperiment exp;
  ConvergenceOracle oracle;

  explicit ConvergedNet(std::size_t n, std::uint64_t seed)
      : exp(make_config(n, seed)),
        oracle((exp.run(), exp.engine()), exp.config().bootstrap, exp.bootstrap_slot()) {}

  static ExperimentConfig make_config(std::size_t n, std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.sampler = SamplerKind::Oracle;
    cfg.warmup_cycles = 0;
    cfg.max_cycles = 80;
    return cfg;
  }
};

TEST(PastryRouter, AllLookupsCorrectAfterConvergence) {
  ConvergedNet net(512, 1);
  ASSERT_TRUE(net.oracle.measure().converged());
  const PastryRouter router(net.exp.engine(), net.exp.bootstrap_slot());
  Rng rng(2);
  const auto stats = router.run_lookups(net.oracle, rng, 1000);
  EXPECT_EQ(stats.attempted, 1000u);
  EXPECT_EQ(stats.correct, 1000u);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 1.0);
}

TEST(PastryRouter, HopCountIsLogarithmic) {
  ConvergedNet net(1024, 3);
  const PastryRouter router(net.exp.engine(), net.exp.bootstrap_slot());
  Rng rng(4);
  const auto stats = router.run_lookups(net.oracle, rng, 500);
  // log16(1024) = 2.5; greedy Pastry stays close to that.
  EXPECT_LE(stats.avg_hops, 4.0);
  EXPECT_GE(stats.avg_hops, 1.0);
  EXPECT_LE(stats.max_hops, 8u);
}

TEST(PastryRouter, RouteToOwnKeyTerminatesImmediately) {
  ConvergedNet net(128, 5);
  const PastryRouter router(net.exp.engine(), net.exp.bootstrap_slot());
  const NodeId own = net.exp.engine().id_of(7);
  const auto r = router.route(7, own, net.oracle);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.hops(), 0u);
  EXPECT_EQ(r.root, 7u);
}

TEST(PastryRouter, RouteToMemberIdReachesThatMember) {
  ConvergedNet net(256, 6);
  const PastryRouter router(net.exp.engine(), net.exp.bootstrap_slot());
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Address start = static_cast<Address>(rng.below(256));
    const Address target = static_cast<Address>(rng.below(256));
    const auto r = router.route(start, net.exp.engine().id_of(target), net.oracle);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.root, target);
  }
}

TEST(PastryRouter, EveryHopMakesProgress) {
  ConvergedNet net(512, 8);
  const PastryRouter router(net.exp.engine(), net.exp.bootstrap_slot());
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const Address start = static_cast<Address>(rng.below(512));
    const NodeId key = rng.next_u64();
    const auto r = router.route(start, key, net.oracle);
    ASSERT_TRUE(r.delivered);
    // Ring distance to the key must shrink monotonically along the path
    // once the leaf-set delivery rule kicks in; more loosely, the path must
    // never revisit a node.
    std::set<Address> seen;
    for (const auto a : r.path) EXPECT_TRUE(seen.insert(a).second);
  }
}

TEST(PastryRouter, PartialConvergenceGivesPartialSuccess) {
  ExperimentConfig cfg = ConvergedNet::make_config(512, 10);
  cfg.max_cycles = 4;  // stop early: tables half-built
  cfg.stop_at_convergence = false;
  BootstrapExperiment exp(cfg);
  exp.run();
  const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
  ASSERT_FALSE(oracle.measure().converged());
  const PastryRouter router(exp.engine(), exp.bootstrap_slot());
  Rng rng(11);
  const auto stats = router.run_lookups(oracle, rng, 400);
  // Usable but imperfect: the half-built prefix tables already route most
  // keys (the paper's "kind of routing function" even before completion).
  EXPECT_GT(stats.success_rate(), 0.2);
}

}  // namespace
}  // namespace bsvc
