#include "core/perfect_tables.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/leaf_set.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

// Brute-force perfect prefix total: for every (row, col) cell of `own`,
// count members in it, cap at k, sum.
std::uint64_t brute_prefix_total(NodeId own, const std::vector<NodeDescriptor>& members,
                                 const BootstrapConfig& cfg) {
  const int rows = cfg.digits.num_digits<NodeId>();
  std::uint64_t total = 0;
  for (int row = 0; row < rows; ++row) {
    for (int col = 0; col < cfg.digits.radix(); ++col) {
      if (col == digit(own, row, cfg.digits)) continue;
      std::uint64_t count = 0;
      for (const auto& m : members) {
        if (m.id == own) continue;
        if (common_prefix_digits(own, m.id, cfg.digits) == row &&
            digit(m.id, row, cfg.digits) == col) {
          ++count;
        }
      }
      total += std::min<std::uint64_t>(count, static_cast<std::uint64_t>(cfg.k));
    }
  }
  return total;
}

// Brute-force owner: scan for the minimum ring distance, successor tie-break.
NodeId brute_owner(NodeId key, const std::vector<NodeDescriptor>& members) {
  NodeId best = members.front().id;
  for (const auto& m : members) {
    if (closer_on_ring(key, m.id, best)) best = m.id;
  }
  return best;
}

class PerfectTablesParam : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(PerfectTablesParam, PrefixTotalsMatchBruteForce) {
  const auto [n, bits, k] = GetParam();
  BootstrapConfig cfg;
  cfg.digits = DigitConfig{bits};
  cfg.k = k;
  const auto members = test::random_descriptors(n, 77 + n);
  const PerfectTables truth(members, cfg);
  for (const auto& m : members) {
    EXPECT_EQ(truth.perfect_prefix_total(truth.rank_of_id(m.id)),
              brute_prefix_total(m.id, members, cfg))
        << "n=" << n << " b=" << bits << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PerfectTablesParam,
                         ::testing::Combine(::testing::Values(1, 2, 3, 9, 33, 150),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(1, 2, 3)));

TEST(PerfectTables, LeafSpansMatchLeafSetSemantics) {
  // The perfect leaf set must be exactly what UPDATELEAFSET computes given
  // global knowledge (the protocol's fixed point).
  for (const std::size_t n : {2u, 3u, 7u, 25u, 100u}) {
    for (const std::size_t c : {2u, 6u, 20u}) {
      BootstrapConfig cfg;
      cfg.c = c;
      const auto members = test::random_descriptors(n, 31 * n + c);
      const PerfectTables truth(members, cfg);
      for (const auto& m : members) {
        LeafSet ls(m.id, c);
        ls.update(members);
        auto expect = truth.perfect_leaf_ids(truth.rank_of_id(m.id));
        std::vector<NodeId> got;
        for (const auto& e : ls.all()) got.push_back(e.id);
        std::sort(expect.begin(), expect.end());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expect) << "n=" << n << " c=" << c;
      }
    }
  }
}

TEST(PerfectTables, LeafSpanCountsForTinyMemberships) {
  BootstrapConfig cfg;
  cfg.c = 20;
  // 3 members: everyone's perfect leaf set is the other two.
  const auto members = test::random_descriptors(3, 5);
  const PerfectTables truth(members, cfg);
  for (std::size_t r = 0; r < 3; ++r) {
    const auto span = truth.leaf_span(r);
    EXPECT_EQ(span.succ_count + span.pred_count, 2u);
  }
}

TEST(PerfectTables, SingleMemberHasEmptyStructures) {
  BootstrapConfig cfg;
  const auto members = test::random_descriptors(1, 6);
  const PerfectTables truth(members, cfg);
  const auto span = truth.leaf_span(0);
  EXPECT_EQ(span.succ_count, 0u);
  EXPECT_EQ(span.pred_count, 0u);
  EXPECT_EQ(truth.perfect_prefix_total(0), 0u);
  EXPECT_EQ(truth.owner_of(12345).id, members[0].id);
}

TEST(PerfectTables, OwnerMatchesBruteForce) {
  const auto members = test::random_descriptors(200, 8);
  BootstrapConfig cfg;
  const PerfectTables truth(members, cfg);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const NodeId key = rng.next_u64();
    EXPECT_EQ(truth.owner_of(key).id, brute_owner(key, members));
  }
  // A member's own ID is owned by itself.
  EXPECT_EQ(truth.owner_of(members[10].id).id, members[10].id);
}

TEST(PerfectTables, PerfectPrefixSumEqualsPerRankSum) {
  const auto members = test::random_descriptors(500, 10);
  BootstrapConfig cfg;
  const PerfectTables truth(members, cfg);
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < truth.size(); ++r) sum += truth.perfect_prefix_total(r);
  EXPECT_EQ(truth.perfect_prefix_sum(), sum);
  EXPECT_GT(sum, 0u);
}

TEST(PerfectTablesDeathTest, DuplicateIdsRejected) {
  BootstrapConfig cfg;
  std::vector<NodeDescriptor> members{{5, 0}, {5, 1}};
  EXPECT_DEATH(PerfectTables(members, cfg), "duplicate node IDs");
}

TEST(PerfectTables, RankOfIdFindsEveryMember) {
  const auto members = test::random_descriptors(64, 11);
  BootstrapConfig cfg;
  const PerfectTables truth(members, cfg);
  for (const auto& m : members) {
    const auto rank = truth.rank_of_id(m.id);
    EXPECT_EQ(truth.sorted_members()[rank].id, m.id);
  }
}

}  // namespace
}  // namespace bsvc
