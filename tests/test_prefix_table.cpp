#include "core/prefix_table.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/perfect_tables.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

constexpr DigitConfig kB4{4};

TEST(PrefixTable, StartsEmpty) {
  PrefixTable t(0x1234, kB4, 3);
  EXPECT_EQ(t.filled(), 0u);
  EXPECT_TRUE(t.entries().empty());
  EXPECT_EQ(t.rows(), 16);
  EXPECT_EQ(t.k(), 3);
}

TEST(PrefixTable, CellOfComputesRowAndColumn) {
  // own = 0xAB00...; id = 0xAC00... shares 1 digit (A), differs at digit 1
  // with value C.
  const NodeId own = 0xAB00000000000000ull;
  PrefixTable t(own, kB4, 3);
  const auto cell = t.cell_of(0xAC00000000000000ull);
  EXPECT_EQ(cell.row, 1);
  EXPECT_EQ(cell.col, 0xC);
  const auto cell0 = t.cell_of(0x1B00000000000000ull);
  EXPECT_EQ(cell0.row, 0);
  EXPECT_EQ(cell0.col, 0x1);
}

TEST(PrefixTable, InsertPlacesEntryInItsCell) {
  const NodeId own = 0xAB00000000000000ull;
  PrefixTable t(own, kB4, 3);
  EXPECT_TRUE(t.insert({0xAC12000000000000ull, 1}));
  EXPECT_EQ(t.filled(), 1u);
  EXPECT_EQ(t.cell_count(1, 0xC), 1u);
  EXPECT_EQ(t.cell(1, 0xC)[0].id, 0xAC12000000000000ull);
  EXPECT_EQ(t.cell_count(1, 0xD), 0u);
}

TEST(PrefixTable, RejectsOwnIdNullAddressAndDuplicates) {
  const NodeId own = 0xAB00000000000000ull;
  PrefixTable t(own, kB4, 3);
  EXPECT_FALSE(t.insert({own, 1}));
  EXPECT_FALSE(t.insert({0xAC00000000000000ull, kNullAddress}));
  EXPECT_TRUE(t.insert({0xAC00000000000000ull, 1}));
  EXPECT_FALSE(t.insert({0xAC00000000000000ull, 2}));  // same id again
  EXPECT_EQ(t.filled(), 1u);
}

TEST(PrefixTable, CellCapacityIsK) {
  const NodeId own = 0;
  PrefixTable t(own, kB4, 2);
  // Four ids in cell (0, 0xF).
  EXPECT_TRUE(t.insert({0xF000000000000001ull, 1}));
  EXPECT_TRUE(t.insert({0xF000000000000002ull, 2}));
  EXPECT_FALSE(t.insert({0xF000000000000003ull, 3}));
  EXPECT_EQ(t.cell_count(0, 0xF), 2u);
  EXPECT_EQ(t.filled(), 2u);
}

TEST(PrefixTable, EntriesStaySortedById) {
  PrefixTable t(0, kB4, 3);
  const auto ds = test::random_descriptors(200, 7);
  t.insert_all(ds);
  const auto& e = t.entries();
  for (std::size_t i = 1; i < e.size(); ++i) EXPECT_LT(e[i - 1].id, e[i].id);
}

TEST(PrefixTable, RemoveErasesEntry) {
  PrefixTable t(0, kB4, 3);
  EXPECT_TRUE(t.insert({0xF000000000000001ull, 1}));
  EXPECT_TRUE(t.contains(0xF000000000000001ull));
  EXPECT_TRUE(t.remove(0xF000000000000001ull));
  EXPECT_FALSE(t.contains(0xF000000000000001ull));
  EXPECT_FALSE(t.remove(0xF000000000000001ull));
}

TEST(PrefixTable, InsertAllCountsAdded) {
  PrefixTable t(0, kB4, 3);
  DescriptorList ds{{0xF000000000000001ull, 1},
                    {0xF000000000000001ull, 1},  // duplicate
                    {0, 2},                      // own id
                    {0xE000000000000001ull, 3}};
  EXPECT_EQ(t.insert_all(ds), 2u);
}

TEST(PrefixTable, DeepRowsAcrossWholeIdWidth) {
  // ids sharing 15 of 16 digits with own.
  const NodeId own = 0x123456789ABCDEF0ull;
  PrefixTable t(own, kB4, 3);
  const NodeId deep = own ^ 0x1;  // differs only in the last digit
  EXPECT_TRUE(t.insert({deep, 1}));
  const auto cell = t.cell_of(deep);
  EXPECT_EQ(cell.row, 15);
  EXPECT_EQ(t.cell_count(15, cell.col), 1u);
}

// Property sweep over digit widths: inserting the whole membership yields
// exactly the perfect entry counts the trie oracle predicts, and per-cell
// contents are consistent with cell_of.
class PrefixTableVsOracle : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(PrefixTableVsOracle, SaturatedTableMatchesPerfectCounts) {
  const auto [bits, k, n] = GetParam();
  const DigitConfig digits{bits};
  BootstrapConfig cfg;
  cfg.digits = digits;
  cfg.k = k;
  const auto members = test::random_descriptors(n, 1000 + static_cast<std::uint64_t>(bits) +
                                                       static_cast<std::uint64_t>(k) + n);
  const PerfectTables truth(members, cfg);

  for (std::size_t probe = 0; probe < std::min<std::size_t>(n, 12); ++probe) {
    PrefixTable t(members[probe].id, digits, k);
    t.insert_all(members);
    EXPECT_EQ(t.filled(), truth.perfect_prefix_total(truth.rank_of_id(members[probe].id)))
        << "b=" << bits << " k=" << k << " n=" << n;
    // Every entry is in the cell cell_of says, and cells respect k.
    std::map<std::pair<int, int>, std::size_t> cells;
    for (const auto& e : t.entries()) {
      const auto c = t.cell_of(e.id);
      ++cells[{c.row, c.col}];
    }
    for (const auto& [cell, count] : cells) {
      EXPECT_LE(count, static_cast<std::size_t>(k));
      EXPECT_EQ(t.cell_count(cell.first, cell.second), count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefixTableVsOracle,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(2, 17, 128, 600)));

}  // namespace
}  // namespace bsvc
