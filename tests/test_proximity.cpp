#include "overlay/proximity.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace bsvc {
namespace {

TEST(CoordinateSpace, LatencyIsSymmetricAndBounded) {
  CoordinateSpace space(100, Rng(1), /*side=*/1000.0, /*base=*/10.0);
  for (Address a = 0; a < 100; ++a) {
    for (Address b = 0; b < 100; b += 7) {
      EXPECT_EQ(space.latency(a, b), space.latency(b, a));
      EXPECT_GE(space.latency(a, b), 10u);
      // base + diagonal of the plane
      EXPECT_LE(space.latency(a, b), 10u + 1415u);
    }
  }
}

TEST(CoordinateSpace, SelfLatencyIsBase) {
  CoordinateSpace space(10, Rng(2), 1000.0, 25.0);
  EXPECT_EQ(space.latency(3, 3), 25u);
}

TEST(CoordinateSpace, ExtendAddsCoordinates) {
  CoordinateSpace space(5, Rng(3));
  space.extend(9);
  EXPECT_GT(space.latency(9, 0), 0u);
}

TEST(CoordinateSpace, InstallDrivesEngineTransport) {
  CoordinateSpace space(2, Rng(4), 1000.0, 200.0);
  TransportConfig t;
  t.min_latency = 0;  // no jitter so delivery time is deterministic >= base
  Engine engine(5, t);
  engine.add_node(1);
  engine.add_node(2);
  space.install(engine);

  struct Probe final : public Payload {
    std::size_t wire_bytes() const override { return 1; }
    const char* type_name() const override { return "probe"; }
  };
  struct Sink final : public Protocol {
    SimTime delivered_at = 0;
    void on_message(Context& ctx, Address, const Payload&) override {
      delivered_at = ctx.now();
    }
  };
  engine.attach(1, std::make_unique<Sink>());
  engine.start_node(1);
  engine.send_message(0, 1, 0, std::make_unique<Probe>());
  engine.run_all();
  const auto& sink = dynamic_cast<const Sink&>(engine.protocol(1, 0));  // test-only checked cast
  EXPECT_EQ(sink.delivered_at, space.latency(0, 1));
}

struct ProxNet {
  BootstrapExperiment exp;
  CoordinateSpace space;
  ConvergenceOracle oracle;

  explicit ProxNet(int k)
      : exp(make_config(k)),
        space((exp.run(), exp.engine().node_count()), Rng(99)),
        oracle(exp.engine(), exp.config().bootstrap, exp.bootstrap_slot()) {}

  static ExperimentConfig make_config(int k) {
    ExperimentConfig cfg;
    cfg.n = 512;
    cfg.seed = 6;
    cfg.sampler = SamplerKind::Oracle;
    cfg.warmup_cycles = 0;
    cfg.max_cycles = 80;
    cfg.bootstrap.k = k;
    return cfg;
  }
};

TEST(ProximityRouter, BothPoliciesRouteCorrectly) {
  ProxNet net(3);
  Rng rng(7);
  for (const HopSelection sel : {HopSelection::First, HopSelection::Proximity}) {
    const ProximityRouter router(net.exp.engine(), net.exp.bootstrap_slot(), net.space, sel);
    const auto stats = router.run_lookups(net.oracle, rng, 300);
    EXPECT_EQ(stats.success_rate, 1.0);
    EXPECT_GT(stats.avg_route_latency, 0.0);
  }
}

TEST(ProximityRouter, ProximitySelectionReducesLatencyWithK3) {
  ProxNet net(3);
  Rng rng_a(8), rng_b(8);
  const ProximityRouter first(net.exp.engine(), net.exp.bootstrap_slot(), net.space,
                              HopSelection::First);
  const ProximityRouter prox(net.exp.engine(), net.exp.bootstrap_slot(), net.space,
                             HopSelection::Proximity);
  const auto s_first = first.run_lookups(net.oracle, rng_a, 1000);
  const auto s_prox = prox.run_lookups(net.oracle, rng_b, 1000);
  EXPECT_LT(s_prox.avg_route_latency, s_first.avg_route_latency * 0.95);
  // Hop counts stay in the same ballpark (selection never skips progress).
  EXPECT_NEAR(s_prox.avg_hops, s_first.avg_hops, 1.0);
}

TEST(ProximityRouter, NoGainWithK1) {
  ProxNet net(1);
  Rng rng_a(9), rng_b(9);
  const ProximityRouter first(net.exp.engine(), net.exp.bootstrap_slot(), net.space,
                              HopSelection::First);
  const ProximityRouter prox(net.exp.engine(), net.exp.bootstrap_slot(), net.space,
                             HopSelection::Proximity);
  const auto s_first = first.run_lookups(net.oracle, rng_a, 500);
  const auto s_prox = prox.run_lookups(net.oracle, rng_b, 500);
  // With a single entry per cell there is nothing to choose from.
  EXPECT_NEAR(s_prox.avg_route_latency, s_first.avg_route_latency,
              s_first.avg_route_latency * 0.02);
}

}  // namespace
}  // namespace bsvc
