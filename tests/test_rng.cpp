#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bsvc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBound * 0.9);
    EXPECT_LT(c, kDraws / kBound * 1.1);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.2, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleMovesElements) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[static_cast<std::size_t>(i)] != i ? 1 : 0;
  EXPECT_GT(moved, 80);
}

TEST(Rng, DistinctIndicesAreDistinctAndInRange) {
  Rng rng(41);
  for (std::uint32_t n : {0u, 1u, 5u, 17u}) {
    const auto idx = rng.distinct_indices(n, 20);
    EXPECT_EQ(idx.size(), n);
    std::set<std::uint32_t> seen(idx.begin(), idx.end());
    EXPECT_EQ(seen.size(), n);
    for (const auto i : idx) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, DistinctIndicesFullUniverse) {
  Rng rng(43);
  const auto idx = rng.distinct_indices(10, 10);
  std::set<std::uint32_t> seen(idx.begin(), idx.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng child = a.split();
  // The child must not replay the parent's continuation.
  Rng b(47);
  (void)b.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == a.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(53);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Splitmix, KnownGoldenValues) {
  // Reference values from the splitmix64 reference implementation with
  // state = 0 (first three outputs).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454Full);
}

}  // namespace
}  // namespace bsvc
