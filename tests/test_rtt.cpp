// The Jacobson/Karn RTT estimator and the bounded-backoff retry policy
// (common/rtt.hpp): seeding, gains, clamping, loss backoff, and the
// determinism of the jittered retry schedule.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/rtt.hpp"

using namespace bsvc;

namespace {

RttConfig wide_config() {
  RttConfig c;
  c.initial_timeout = 400;
  c.min_timeout = 1;
  c.max_timeout = 1'000'000;
  return c;
}

TEST(RttEstimator, UsesInitialTimeoutBeforeFirstSample) {
  RttEstimator est(wide_config());
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.timeout(), 400u);
}

TEST(RttEstimator, FirstSampleSeedsSrttAndHalfVariance) {
  RttEstimator est(wide_config());
  est.on_sample(200);
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), 200u);
  EXPECT_EQ(est.rttvar(), 100u);
  EXPECT_EQ(est.samples(), 1u);
  // timeout = srtt + 4 * rttvar = 200 + 400.
  EXPECT_EQ(est.timeout(), 600u);
}

TEST(RttEstimator, AppliesJacobsonGainsOnLaterSamples) {
  RttEstimator est(wide_config());
  est.on_sample(160);  // srtt 160, rttvar 80
  est.on_sample(240);  // err 80: rttvar = (3*80 + 80)/4 = 80, srtt = (7*160+240)/8 = 170
  EXPECT_EQ(est.srtt(), 170u);
  EXPECT_EQ(est.rttvar(), 80u);
  EXPECT_EQ(est.timeout(), 170u + 4 * 80u);
}

TEST(RttEstimator, ConvergesTowardsSteadyRtt) {
  RttEstimator est(wide_config());
  for (int i = 0; i < 200; ++i) est.on_sample(100);
  EXPECT_EQ(est.srtt(), 100u);
  EXPECT_EQ(est.rttvar(), 0u);
  // Fully converged on a constant path the timeout collapses to srtt
  // (clamped by min_timeout in real configs).
  EXPECT_EQ(est.timeout(), 100u);
}

TEST(RttEstimator, TimeoutIsClampedToConfiguredBounds) {
  RttConfig c;
  c.initial_timeout = 400;
  c.min_timeout = 150;
  c.max_timeout = 500;
  RttEstimator est(c);
  for (int i = 0; i < 100; ++i) est.on_sample(10);
  EXPECT_EQ(est.timeout(), 150u);  // floor
  for (int i = 0; i < 100; ++i) est.on_sample(100'000);
  EXPECT_EQ(est.timeout(), 500u);  // ceiling
}

TEST(RttEstimator, TimeoutDoublesPerLossAndResetsOnCleanSample) {
  RttEstimator est(wide_config());
  est.on_sample(100);  // timeout 300
  const std::uint64_t base = est.timeout();
  est.on_timeout();
  EXPECT_EQ(est.timeout(), 2 * base);
  est.on_timeout();
  EXPECT_EQ(est.timeout(), 4 * base);
  // A clean sample clears the backoff (the sample also tightens rttvar:
  // err 0 gives rttvar (3*50+0)/4 = 37, so timeout 100 + 4*37).
  est.on_sample(100);
  EXPECT_EQ(est.timeout(), 248u);
}

TEST(RttEstimator, BackoffSaturatesAtMaxTimeout) {
  RttConfig c = wide_config();
  c.max_timeout = 2000;
  RttEstimator est(c);
  est.on_sample(100);
  for (int i = 0; i < 40; ++i) est.on_timeout();  // far past the cap
  EXPECT_EQ(est.timeout(), 2000u);
}

TEST(RetryPolicy, DelayGrowsExponentiallyWithoutJitter) {
  RetryPolicy p;
  p.budget = 5;
  p.backoff = 2.0;
  p.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(p.delay(1, 100, rng), 100u);
  EXPECT_EQ(p.delay(2, 100, rng), 200u);
  EXPECT_EQ(p.delay(3, 100, rng), 400u);
  EXPECT_EQ(p.delay(4, 100, rng), 800u);
}

TEST(RetryPolicy, JitterStaysWithinFractionAndIsDeterministic) {
  RetryPolicy p;
  p.budget = 3;
  p.backoff = 2.0;
  p.jitter = 0.25;
  Rng a(42), b(42);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const std::uint64_t da = p.delay(attempt, 1000, a);
    const std::uint64_t db = p.delay(attempt, 1000, b);
    EXPECT_EQ(da, db) << "same stream, same draw";
    const std::uint64_t pure = 1000u << (attempt - 1);
    EXPECT_GE(da, pure);
    EXPECT_LE(da, pure + pure / 4);
  }
}

TEST(RetryPolicy, NeverReturnsZeroDelay) {
  RetryPolicy p;
  p.budget = 1;
  p.backoff = 2.0;
  p.jitter = 0.0;
  Rng rng(7);
  EXPECT_GE(p.delay(1, 0, rng), 1u);
}

}  // namespace
