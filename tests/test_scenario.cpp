#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace bsvc {
namespace {

class Inert final : public Protocol {};

std::unique_ptr<Engine> make_engine(std::size_t n, std::uint64_t seed = 1) {
  auto e = std::make_unique<Engine>(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const Address a = e->add_node(static_cast<NodeId>(i + 1));
    e->attach(a, std::make_unique<Inert>());
    e->start_node(a);
  }
  return e;
}

TEST(Catastrophe, KillsRequestedFraction) {
  auto net = make_engine(1000);
  Engine& e = *net;
  schedule_catastrophe(e, 50, 0.7);
  e.run_until(100);
  EXPECT_EQ(e.alive_count(), 300u);
}

TEST(Catastrophe, ZeroAndFullFraction) {
  auto net = make_engine(100);
  Engine& e = *net;
  schedule_catastrophe(e, 10, 0.0);
  schedule_catastrophe(e, 20, 1.0);
  e.run_until(15);
  EXPECT_EQ(e.alive_count(), 100u);
  e.run_until(25);
  EXPECT_EQ(e.alive_count(), 0u);
}

TEST(Catastrophe, NothingHappensBeforeScheduledTime) {
  auto net = make_engine(100);
  Engine& e = *net;
  schedule_catastrophe(e, 1000, 0.5);
  e.run_until(999);
  EXPECT_EQ(e.alive_count(), 100u);
}

TEST(Churn, FailRateShrinksNetwork) {
  auto net = make_engine(2000, 3);
  Engine& e = *net;
  ChurnConfig cc;
  cc.from = 0;
  cc.to = 10 * kDelta;
  cc.period = kDelta;
  cc.fail_rate = 0.05;
  schedule_churn(e, cc, nullptr);
  e.run_until(cc.to + 1);
  // Ten periods of 5% failures: expect roughly 2000 * 0.95^10 ≈ 1197.
  EXPECT_NEAR(static_cast<double>(e.alive_count()), 2000.0 * std::pow(0.95, 10), 60.0);
}

TEST(Churn, JoinRateGrowsNetwork) {
  auto net = make_engine(1000, 4);
  Engine& e = *net;
  std::size_t created = 0;
  ChurnConfig cc;
  cc.from = 0;
  cc.to = 5 * kDelta;
  cc.period = kDelta;
  cc.join_rate = 0.1;
  schedule_churn(e, cc, [&created](Engine& eng) {
    ++created;
    const Address a = eng.add_node(static_cast<NodeId>(0x10000 + created));
    eng.attach(a, std::make_unique<Inert>());
    return a;
  });
  e.run_until(cc.to + kDelta);
  EXPECT_GT(created, 400u);  // ~1000 * (1.1^5 - 1) ≈ 610
  EXPECT_LT(created, 800u);
  EXPECT_EQ(e.alive_count(), 1000u + created);
}

TEST(Churn, StopsAtConfiguredEnd) {
  auto net = make_engine(1000, 5);
  Engine& e = *net;
  ChurnConfig cc;
  cc.from = 0;
  cc.to = 3 * kDelta;
  cc.period = kDelta;
  cc.fail_rate = 0.1;
  schedule_churn(e, cc, nullptr);
  e.run_until(20 * kDelta);
  const auto after_stop = e.alive_count();
  e.run_until(40 * kDelta);
  EXPECT_EQ(e.alive_count(), after_stop);
}

TEST(Partition, BlocksCrossGroupTrafficUntilHealed) {
  auto net = make_engine(4);
  Engine& e = *net;
  std::vector<std::uint32_t> groups{0, 0, 1, 1};
  apply_partition(e, groups);

  struct Probe final : public Payload {
    std::size_t wire_bytes() const override { return 1; }
    const char* type_name() const override { return "probe"; }
  };
  e.send_message(0, 1, 0, std::make_unique<Probe>());  // same group
  e.send_message(0, 2, 0, std::make_unique<Probe>());  // cross group
  e.run_until(1000);
  EXPECT_EQ(e.traffic().messages_delivered, 1u);
  EXPECT_EQ(e.traffic().messages_dropped, 1u);

  heal_partition(e);
  e.send_message(0, 2, 0, std::make_unique<Probe>());
  e.run_until(2000);
  EXPECT_EQ(e.traffic().messages_delivered, 2u);
}

}  // namespace
}  // namespace bsvc
