// Property test: the SoA/arena-backed LeafSet and PrefixTable must hold
// element-identical contents, in identical iteration order, to the seed
// struct-of-descriptors semantics under any interleaving of insert, evict
// and merge operations. The reference tables below reimplement the original
// AoS algorithms verbatim (vectors of NodeDescriptor, same sort keys, same
// spare/top-up arithmetic); both implementations are then driven with the
// same seeded random operation sequences and compared after every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/leaf_set.hpp"
#include "core/prefix_table.hpp"
#include "id/digits.hpp"
#include "id/ring.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

// --- Reference (seed) implementations ------------------------------------

class RefLeafSet {
 public:
  RefLeafSet(NodeId own, std::size_t capacity) : own_(own), capacity_(capacity) {}

  void update(const std::vector<NodeDescriptor>& incoming) {
    std::vector<NodeDescriptor> candidates = succ_;
    candidates.insert(candidates.end(), pred_.begin(), pred_.end());
    for (const auto& d : incoming) {
      if (d.id == own_ || d.addr == kNullAddress) continue;
      candidates.push_back(d);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 [](const NodeDescriptor& a, const NodeDescriptor& b) {
                                   return a.id == b.id;
                                 }),
                     candidates.end());

    std::vector<NodeDescriptor> succ;
    std::vector<NodeDescriptor> pred;
    for (const auto& d : candidates) (is_successor(own_, d.id) ? succ : pred).push_back(d);
    std::sort(succ.begin(), succ.end(),
              [this](const NodeDescriptor& a, const NodeDescriptor& b) {
                return successor_distance(own_, a.id) < successor_distance(own_, b.id);
              });
    std::sort(pred.begin(), pred.end(),
              [this](const NodeDescriptor& a, const NodeDescriptor& b) {
                return predecessor_distance(own_, a.id) < predecessor_distance(own_, b.id);
              });

    const std::size_t half = capacity_ / 2;
    std::size_t take_s = std::min(succ.size(), half);
    std::size_t take_p = std::min(pred.size(), half);
    std::size_t spare = capacity_ - take_s - take_p;
    const std::size_t extra_s = std::min(succ.size() - take_s, spare);
    take_s += extra_s;
    spare -= extra_s;
    take_p += std::min(pred.size() - take_p, spare);

    succ.resize(take_s);
    pred.resize(take_p);
    succ_ = std::move(succ);
    pred_ = std::move(pred);
  }

  bool remove(NodeId id) {
    for (auto* side : {&succ_, &pred_}) {
      for (auto it = side->begin(); it != side->end(); ++it) {
        if (it->id == id) {
          side->erase(it);
          return true;
        }
      }
    }
    return false;
  }

  const std::vector<NodeDescriptor>& successors() const { return succ_; }
  const std::vector<NodeDescriptor>& predecessors() const { return pred_; }

 private:
  NodeId own_;
  std::size_t capacity_;
  std::vector<NodeDescriptor> succ_;
  std::vector<NodeDescriptor> pred_;
};

class RefPrefixTable {
 public:
  RefPrefixTable(NodeId own, DigitConfig digits, int k)
      : own_(own), digits_(digits), k_(k) {}

  bool insert(const NodeDescriptor& d) {
    if (d.id == own_ || d.addr == kNullAddress) return false;
    const int row = common_prefix_digits(own_, d.id, digits_);
    const int col = digit(d.id, row, digits_);
    const NodeId lo = prefix_range_lo(own_, row, col, digits_);
    const NodeId hi = prefix_range_hi(own_, row, col, digits_);
    const auto by_id = [](const NodeDescriptor& a, NodeId id) { return a.id < id; };
    const auto first = std::lower_bound(entries_.begin(), entries_.end(), lo, by_id);
    const auto last =
        hi == 0 ? entries_.end() : std::lower_bound(first, entries_.end(), hi, by_id);
    if (last - first >= k_) return false;
    const auto pos = std::lower_bound(first, last, d.id, by_id);
    if (pos != last && pos->id == d.id) return false;
    entries_.insert(pos, d);
    return true;
  }

  bool remove(NodeId id) {
    const auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const NodeDescriptor& a, NodeId key) { return a.id < key; });
    if (pos == entries_.end() || pos->id != id) return false;
    entries_.erase(pos);
    return true;
  }

  const std::vector<NodeDescriptor>& entries() const { return entries_; }

 private:
  NodeId own_;
  DigitConfig digits_;
  int k_;
  std::vector<NodeDescriptor> entries_;
};

// --- Comparison helpers ----------------------------------------------------

void expect_same(DescriptorView actual, const std::vector<NodeDescriptor>& expected,
                 const char* what, std::size_t step) {
  ASSERT_EQ(actual.size(), expected.size()) << what << " size at step " << step;
  std::size_t i = 0;
  // Walk the view's own iteration order — this pins order, not just contents.
  for (const auto& d : actual) {
    EXPECT_EQ(d.id, expected[i].id) << what << "[" << i << "].id at step " << step;
    EXPECT_EQ(d.addr, expected[i].addr) << what << "[" << i << "].addr at step " << step;
    ++i;
  }
}

// --- Drivers ---------------------------------------------------------------

TEST(SoaEquivalence, LeafSetMatchesSeedSemanticsUnderRandomOps) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    Rng rng(seed);
    const NodeId own = rng.next_u64();
    const std::size_t c = 2 + rng.below(19);  // odd capacities exercise the float slot
    LeafSet ls(own, c);
    RefLeafSet ref(own, c);
    const auto pool = test::random_descriptors(200, seed * 31 + 1);

    for (std::size_t step = 0; step < 300; ++step) {
      const auto op = rng.below(10);
      if (op < 6) {  // merge a random batch (UPDATELEAFSET)
        std::vector<NodeDescriptor> batch;
        const auto n = 1 + rng.below(25);
        for (std::uint64_t i = 0; i < n; ++i) batch.push_back(pool[rng.below(pool.size())]);
        if (rng.chance(0.1)) batch.push_back({own, 1});            // self: ignored
        if (rng.chance(0.1)) batch.push_back({123, kNullAddress});  // null: ignored
        ls.update(batch);
        ref.update(batch);
      } else if (op < 9) {  // evict (dead-peer removal), present or not
        const NodeId victim = rng.chance(0.7) && !ref.successors().empty()
                                  ? ref.successors()[rng.below(ref.successors().size())].id
                                  : pool[rng.below(pool.size())].id;
        EXPECT_EQ(ls.remove(victim), ref.remove(victim)) << "step " << step;
      } else {  // copy round-trip: the copied set must carry identical state
        const LeafSet snapshot = ls;
        ls = snapshot;
      }
      expect_same(ls.successors(), ref.successors(), "successors", step);
      expect_same(ls.predecessors(), ref.predecessors(), "predecessors", step);
    }
  }
}

TEST(SoaEquivalence, PrefixTableMatchesSeedSemanticsUnderRandomOps) {
  const DigitConfig digits{};  // repo default (b = 4)
  for (const std::uint64_t seed : {2ull, 11ull, 4321ull}) {
    Rng rng(seed);
    const NodeId own = rng.next_u64();
    const int k = 1 + static_cast<int>(rng.below(4));
    PrefixTable pt(own, digits, k);
    RefPrefixTable ref(own, digits, k);
    const auto pool = test::random_descriptors(300, seed * 17 + 5);

    for (std::size_t step = 0; step < 600; ++step) {
      const auto op = rng.below(10);
      if (op < 7) {  // UPDATEPREFIXTABLE for one descriptor
        const auto& d = pool[rng.below(pool.size())];
        EXPECT_EQ(pt.insert(d), ref.insert(d)) << "step " << step;
      } else if (op < 9) {  // dead-peer removal, present or not
        const NodeId victim = rng.chance(0.7) && !ref.entries().empty()
                                  ? ref.entries()[rng.below(ref.entries().size())].id
                                  : pool[rng.below(pool.size())].id;
        EXPECT_EQ(pt.remove(victim), ref.remove(victim)) << "step " << step;
      } else {  // copy round-trip
        const PrefixTable snapshot = pt;
        pt = snapshot;
      }
      expect_same(pt.entries(), ref.entries(), "entries", step);
      EXPECT_EQ(pt.filled(), ref.entries().size()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace bsvc
