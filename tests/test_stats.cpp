#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bsvc {
namespace {

TEST(Accumulator, EmptyDefaults) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_TRUE(std::isinf(acc.min()));
  EXPECT_TRUE(std::isinf(acc.max()));
}

TEST(Accumulator, MomentsMatchDirectComputation) {
  Accumulator acc;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const double x : xs) {
    acc.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= 4.0;
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.sum(), sum);
  EXPECT_NEAR(acc.mean(), mean, 1e-12);
  EXPECT_NEAR(acc.variance(), var, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(acc.min(), 1.0);
  EXPECT_EQ(acc.max(), 16.0);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.mean(), 42.0);
}

TEST(Samples, QuantilesOnKnownData) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Samples, EmptyQuantileIsZero) {
  Samples s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(3.0);
  EXPECT_EQ(s.quantile(0.5), 3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bucket 0
  h.add(9.99);   // bucket 9
  h.add(-5.0);   // clamped to 0
  h.add(100.0);  // clamped to 9
  h.add(5.0);    // bucket 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 20.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 14.0);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("[0, 1)"), std::string::npos);
}

TEST(TimeSeries, CsvRoundtrip) {
  TimeSeries ts({"cycle", "value"});
  ts.add_row({0.0, 1.5});
  ts.add_row({1.0, 0.25});
  EXPECT_EQ(ts.rows(), 2u);
  EXPECT_EQ(ts.columns(), 2u);
  EXPECT_EQ(ts.at(1, 1), 0.25);
  EXPECT_EQ(ts.column_name(0), "cycle");
  const std::string csv = ts.to_csv();
  EXPECT_EQ(csv, "cycle,value\n0,1.5\n1,0.25\n");
}

TEST(TimeSeriesDeathTest, RowWidthMismatchAborts) {
  TimeSeries ts({"a", "b"});
  EXPECT_DEATH(ts.add_row({1.0}), "BSVC_CHECK");
}

}  // namespace
}  // namespace bsvc
