#include "overlay/tman.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "id/id_generator.hpp"
#include "sampling/oracle_sampler.hpp"

namespace bsvc {
namespace {

TEST(Rankings, RingRankingMatchesRingDistance) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const NodeId a = rng.next_u64();
    const NodeId b = rng.next_u64();
    EXPECT_EQ(ring_ranking(a, b), ring_distance(a, b));
  }
}

TEST(Rankings, XorRankingIsSymmetricAndZeroOnSelf) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const NodeId a = rng.next_u64();
    const NodeId b = rng.next_u64();
    EXPECT_EQ(xor_ranking(a, b), xor_ranking(b, a));
    EXPECT_EQ(xor_ranking(a, a), 0u);
  }
}

TEST(Rankings, TorusRankingWrapsPerAxis) {
  // pivot at (0, 0); point at (2^32 - 1, 3) is distance 1 + 3 via wrapping.
  const NodeId pivot = 0;
  const NodeId x = (NodeId{0xFFFFFFFF} << 32) | 3;
  EXPECT_EQ(torus_ranking(pivot, x), 4u);
  // symmetric
  EXPECT_EQ(torus_ranking(x, pivot), 4u);
  EXPECT_EQ(torus_ranking(x, x), 0u);
}

struct TManNet {
  std::unique_ptr<Engine> engine;
  std::size_t n;

  TManNet(std::size_t n, std::uint64_t seed, RankingFunction ranking, TManConfig cfg = {})
      : n(n) {
    engine = std::make_unique<Engine>(seed);
    IdGenerator ids{Rng(seed ^ 0xFEED)};
    for (std::size_t i = 0; i < n; ++i) engine->add_node(ids.next());
    for (Address a = 0; a < n; ++a) {
      auto sampler = std::make_unique<OracleSamplerProtocol>(*engine, a);
      auto* sp = sampler.get();
      engine->attach(a, std::move(sampler));
      engine->attach(a, std::make_unique<TManProtocol>(cfg, ranking, sp,
                                                       engine->rng().below(kDelta)));
      engine->start_node(a);
    }
  }

  const TManProtocol& proto(Address a) const {
    return dynamic_cast<const TManProtocol&>(engine->protocol(a, 1));  // test-only checked cast
  }
  void run_cycles(std::size_t c) { engine->run_until(engine->now() + c * kDelta); }
};

class TManGeometry : public ::testing::TestWithParam<int> {
 protected:
  RankingFunction ranking() const {
    switch (GetParam()) {
      case 0: return ring_ranking;
      case 1: return xor_ranking;
      default: return torus_ranking;
    }
  }
};

TEST_P(TManGeometry, ConvergesToTrueNeighbourhoods) {
  TManNet net(256, 42 + static_cast<std::uint64_t>(GetParam()), ranking());
  const TManOracle oracle(*net.engine, SlotRef<TManProtocol>::assume(1), ranking(), TManConfig{}.m);
  net.run_cycles(40);
  EXPECT_LT(oracle.missing_fraction(), 0.01) << "geometry " << GetParam();
}

TEST_P(TManGeometry, MissingFractionDecreases) {
  TManNet net(256, 77 + static_cast<std::uint64_t>(GetParam()), ranking());
  const TManOracle oracle(*net.engine, SlotRef<TManProtocol>::assume(1), ranking(), TManConfig{}.m);
  net.run_cycles(2);
  const double early = oracle.missing_fraction();
  net.run_cycles(20);
  const double late = oracle.missing_fraction();
  EXPECT_LT(late, early * 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllGeometries, TManGeometry, ::testing::Values(0, 1, 2));

TEST(TMan, ViewRespectsSizeAndExcludesSelf) {
  TManNet net(128, 5, ring_ranking);
  net.run_cycles(15);
  for (Address a = 0; a < 128; ++a) {
    const auto& view = net.proto(a).view();
    EXPECT_LE(view.size(), TManConfig{}.m);
    std::set<NodeId> seen;
    for (const auto& d : view) {
      EXPECT_NE(d.id, net.engine->id_of(a));
      EXPECT_TRUE(seen.insert(d.id).second);
    }
  }
}

TEST(TMan, ViewIsSortedBestFirst) {
  TManNet net(128, 6, ring_ranking);
  net.run_cycles(15);
  for (Address a = 0; a < 128; ++a) {
    const NodeId own = net.engine->id_of(a);
    const auto& view = net.proto(a).view();
    for (std::size_t i = 1; i < view.size(); ++i) {
      EXPECT_LE(ring_ranking(own, view[i - 1].id), ring_ranking(own, view[i].id));
    }
  }
}

TEST(TMan, SelectForRanksByPeerNotSelf) {
  TManNet net(128, 7, ring_ranking);
  net.run_cycles(15);
  const NodeId peer = net.engine->id_of(100);
  const auto selection = const_cast<TManProtocol&>(net.proto(0)).select_for(peer);
  ASSERT_FALSE(selection.empty());
  EXPECT_LE(selection.size(), TManConfig{}.m);
  for (std::size_t i = 1; i < selection.size(); ++i) {
    EXPECT_LE(ring_ranking(peer, selection[i - 1].id), ring_ranking(peer, selection[i].id));
  }
  for (const auto& d : selection) EXPECT_NE(d.id, peer);
}

TEST(TMan, TorusNeighbourhoodIsSpatiallyLocal) {
  // In the torus geometry, converged views must be spatially tight: every
  // view entry is closer than a random member on average.
  TManNet net(256, 8, torus_ranking);
  net.run_cycles(40);
  Rng rng(9);
  double view_dist = 0.0, random_dist = 0.0;
  std::size_t count = 0;
  for (Address a = 0; a < 256; ++a) {
    const NodeId own = net.engine->id_of(a);
    for (const auto& d : net.proto(a).view()) {
      view_dist += static_cast<double>(torus_ranking(own, d.id));
      random_dist += static_cast<double>(
          torus_ranking(own, net.engine->id_of(static_cast<Address>(rng.below(256)))));
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  // Converged torus views are far tighter than random picks (the exact
  // factor scales with N; at 256 nodes ~3-4x), and match the oracle.
  EXPECT_LT(view_dist / static_cast<double>(count),
            random_dist / static_cast<double>(count) / 2.0);
  const TManOracle oracle(*net.engine, SlotRef<TManProtocol>::assume(1), torus_ranking, TManConfig{}.m);
  EXPECT_LT(oracle.missing_fraction(), 0.05);
}

}  // namespace
}  // namespace bsvc
