// Shared helpers for the test suite.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "id/descriptor.hpp"
#include "id/id_generator.hpp"

namespace bsvc::test {

/// `n` descriptors with unique random IDs and addresses 0..n-1.
inline std::vector<NodeDescriptor> random_descriptors(std::size_t n, std::uint64_t seed) {
  IdGenerator ids{Rng(seed)};
  std::vector<NodeDescriptor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back({ids.next(), static_cast<Address>(i)});
  return out;
}

}  // namespace bsvc::test
