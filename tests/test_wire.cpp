#include "wire/message_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bootstrap.hpp"
#include "core/experiment.hpp"
#include "gossip/aggregation.hpp"
#include "gossip/broadcast.hpp"
#include "overlay/chord.hpp"
#include "overlay/tman.hpp"
#include "sampling/newscast.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

template <typename T>
std::unique_ptr<T> roundtrip(const T& msg) {
  const auto bytes = encode_message(msg);
  EXPECT_TRUE(bytes.has_value());
  auto decoded = decode_message(*bytes);
  EXPECT_NE(decoded, nullptr);
  auto* typed = dynamic_cast<T*>(decoded.get());  // test-only checked cast
  EXPECT_NE(typed, nullptr);
  decoded.release();
  return std::unique_ptr<T>(typed);
}

TEST(Wire, BootstrapRoundtrip) {
  const BootstrapMessage msg({42, 7}, test::random_descriptors(20, 1),
                             test::random_descriptors(33, 2), true);
  const auto back = roundtrip(msg);
  EXPECT_EQ(back->sender, msg.sender);
  EXPECT_TRUE(std::ranges::equal(back->ring_part(), msg.ring_part()));
  EXPECT_TRUE(std::ranges::equal(back->prefix_part(), msg.prefix_part()));
  EXPECT_EQ(back->is_request, msg.is_request);
}

TEST(Wire, NewscastRoundtrip) {
  std::vector<TimestampedDescriptor> entries;
  for (const auto& d : test::random_descriptors(30, 3)) entries.push_back({d, 123456});
  const NewscastMessage msg(entries, false);
  const auto back = roundtrip(msg);
  ASSERT_EQ(back->entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].descriptor, entries[i].descriptor);
    EXPECT_EQ(back->entries[i].timestamp, entries[i].timestamp);
  }
  EXPECT_FALSE(back->is_request);
}

TEST(Wire, ChordRoundtrip) {
  const ChordMessage msg({9, 3}, test::random_descriptors(20, 4),
                         test::random_descriptors(12, 5), true);
  const auto back = roundtrip(msg);
  EXPECT_EQ(back->sender, msg.sender);
  EXPECT_EQ(back->ring_part, msg.ring_part);
  EXPECT_EQ(back->finger_part, msg.finger_part);
}

TEST(Wire, TManRumorAggregationRoundtrip) {
  const TManMessage tman({5, 1}, test::random_descriptors(15, 6), false);
  const auto tman_back = roundtrip(tman);
  EXPECT_EQ(tman_back->entries, tman.entries);

  const RumorMessage rumor(0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(roundtrip(rumor)->tag, rumor.tag);

  const AggregationMessage agg(-0.12345678901234567, true);
  EXPECT_EQ(roundtrip(agg)->value, agg.value);  // bit-exact
  EXPECT_TRUE(roundtrip(agg)->is_request);
}

TEST(Wire, ProbeRoundtrip) {
  const ProbeMessage request(/*is_reply=*/false);
  EXPECT_FALSE(roundtrip(request)->is_reply);
  EXPECT_EQ(roundtrip(request)->responder_id, 0u);

  const ProbeMessage reply(/*is_reply=*/true, 0xFEEDFACECAFEBEEFull);
  const auto back = roundtrip(reply);
  EXPECT_TRUE(back->is_reply);
  EXPECT_EQ(back->responder_id, reply.responder_id);
}

TEST(Wire, EncodedSizeMatchesDeclaredWireBytes) {
  // The engine's byte accounting must equal the real encoding (minus the
  // 1-byte type tag, which the accounting folds into header overhead).
  const BootstrapMessage b({1, 1}, test::random_descriptors(20, 7),
                           test::random_descriptors(40, 8), true);
  EXPECT_EQ(encode_message(b)->size() - 1, b.wire_bytes());

  std::vector<TimestampedDescriptor> entries;
  for (const auto& d : test::random_descriptors(31, 9)) entries.push_back({d, 7});
  const NewscastMessage nc(entries, true);
  EXPECT_EQ(encode_message(nc)->size() - 1, nc.wire_bytes());

  const ChordMessage ch({1, 1}, test::random_descriptors(20, 10),
                        test::random_descriptors(9, 11), false);
  EXPECT_EQ(encode_message(ch)->size() - 1, ch.wire_bytes());

  const TManMessage tm({1, 1}, test::random_descriptors(20, 12), false);
  EXPECT_EQ(encode_message(tm)->size() - 1, tm.wire_bytes());

  const RumorMessage ru(1);
  EXPECT_EQ(encode_message(ru)->size() - 1, ru.wire_bytes());

  const AggregationMessage ag(2.5, false);
  EXPECT_EQ(encode_message(ag)->size() - 1, ag.wire_bytes());

  const ProbeMessage pr(true, 42);
  EXPECT_EQ(encode_message(pr)->size() - 1, pr.wire_bytes());
}

TEST(Wire, UnknownPayloadIsRejected) {
  class Alien final : public Payload {
   public:
    std::size_t wire_bytes() const override { return 0; }
    const char* type_name() const override { return "alien"; }
  };
  EXPECT_FALSE(encode_message(Alien{}).has_value());
}

TEST(Wire, MalformedDatagramsNeverCrash) {
  // Truncations of a valid message must all decode to nullptr.
  const BootstrapMessage msg({1, 1}, test::random_descriptors(5, 13),
                             test::random_descriptors(3, 14), true);
  const auto bytes = *encode_message(msg);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_EQ(decode_message(prefix), nullptr) << "cut=" << cut;
  }
  // Trailing garbage is rejected by the strict exhausted() check.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(decode_message(padded), nullptr);
}

// One exemplar of every message type with a wire format (all 7 tags).
std::vector<std::unique_ptr<Payload>> wire_exemplars() {
  std::vector<std::unique_ptr<Payload>> out;
  {
    auto b = std::make_unique<BootstrapMessage>(NodeDescriptor{1, 1},
                                                test::random_descriptors(6, 21),
                                                test::random_descriptors(4, 22), true);
    b->tombstones.push_back({0x123456789ABCDEFull, 42});
    b->tombstones.push_back({7, 99});
    out.push_back(std::move(b));
  }
  {
    std::vector<TimestampedDescriptor> entries;
    for (const auto& d : test::random_descriptors(5, 23)) entries.push_back({d, 777});
    out.push_back(std::make_unique<NewscastMessage>(entries, false));
  }
  out.push_back(std::make_unique<ChordMessage>(NodeDescriptor{2, 2},
                                               test::random_descriptors(5, 24),
                                               test::random_descriptors(3, 25), false));
  out.push_back(std::make_unique<TManMessage>(NodeDescriptor{3, 3},
                                              test::random_descriptors(7, 26), true));
  out.push_back(std::make_unique<RumorMessage>(0xCAFEF00Dull));
  out.push_back(std::make_unique<AggregationMessage>(3.25, true));
  out.push_back(std::make_unique<ProbeMessage>(true, 0xABCDull));
  return out;
}

TEST(Wire, TruncationAtEveryOffsetAllTypes) {
  // For every message type: cutting the datagram at every byte offset must
  // yield a clean nullptr — the strict decoder never accepts a partial
  // frame, never crashes, never overreads (ASan/UBSan-clean via check.sh).
  for (const auto& msg : wire_exemplars()) {
    const auto bytes = encode_message(*msg);
    ASSERT_TRUE(bytes.has_value()) << msg->type_name();
    for (std::size_t cut = 0; cut < bytes->size(); ++cut) {
      const std::vector<std::uint8_t> prefix(
          bytes->begin(), bytes->begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_EQ(decode_message(prefix), nullptr)
          << msg->type_name() << " cut=" << cut;
    }
    // The full frame still parses; one trailing byte breaks exhaustion.
    EXPECT_NE(decode_message(*bytes), nullptr) << msg->type_name();
    auto padded = *bytes;
    padded.push_back(0);
    EXPECT_EQ(decode_message(padded), nullptr) << msg->type_name();
  }
}

TEST(Wire, BitflipFuzzAllTypes) {
  // Random 1–3 bit flips on valid frames of every type: decode must either
  // reject cleanly or produce a message that itself re-encodes under the
  // same type tag (no half-parsed state, no crash).
  Rng rng(4242);
  for (const auto& msg : wire_exemplars()) {
    const auto bytes = encode_message(*msg);
    ASSERT_TRUE(bytes.has_value()) << msg->type_name();
    for (int trial = 0; trial < 2000; ++trial) {
      auto mutant = *bytes;
      const auto flips = 1 + rng.below(3);
      for (std::uint64_t i = 0; i < flips; ++i) {
        auto& b = mutant[rng.below(mutant.size())];
        b = static_cast<std::uint8_t>(b ^ (1u << rng.below(8)));
      }
      const auto decoded = decode_message(mutant);
      if (decoded == nullptr) continue;  // clean rejection
      const auto reencoded = encode_message(*decoded);
      ASSERT_TRUE(reencoded.has_value()) << msg->type_name() << " trial=" << trial;
      EXPECT_NE(decode_message(*reencoded), nullptr)
          << msg->type_name() << " trial=" << trial;
    }
  }
}

TEST(Wire, RandomBytesFuzz) {
  // The decoder must be total: arbitrary byte strings either parse into a
  // message or return nullptr — never crash or overread.
  Rng rng(99);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.below(300));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    // Bias half of the trials toward valid type tags to reach deeper paths.
    if (!bytes.empty() && trial % 2 == 0) {
      bytes[0] = static_cast<std::uint8_t>(1 + rng.below(7));
    }
    (void)decode_message(bytes);  // must simply not crash
  }
  SUCCEED();
}

TEST(Wire, RoundtripTranscoderPreservesConvergence) {
  // A full experiment with every delivered message forced through the
  // binary wire format converges identically to the in-memory run.
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 11;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.max_cycles = 60;

  BootstrapExperiment plain(cfg);
  const auto plain_result = plain.run();

  BootstrapExperiment wired(cfg);
  wired.engine().set_transcoder(wire_roundtrip_transcoder());
  const auto wired_result = wired.run();

  ASSERT_GE(plain_result.converged_cycle, 0);
  EXPECT_EQ(wired_result.converged_cycle, plain_result.converged_cycle);
  EXPECT_EQ(wired_result.bootstrap_stats.requests_sent,
            plain_result.bootstrap_stats.requests_sent);
}

TEST(Wire, RoundtripTranscoderWorksWithNewscastStack) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 12;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);
  exp.engine().set_transcoder(wire_roundtrip_transcoder());
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
}

}  // namespace
}  // namespace bsvc
