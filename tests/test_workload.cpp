// The workload layer: KV put/get over the bootstrapped overlay, replica
// placement, prefix broadcast coverage, and the cross-K determinism of the
// aggregated summaries.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "workload/driver.hpp"

using namespace bsvc;

namespace {

/// One converged small network with the workload stack on every node.
struct WorkloadFixture {
  explicit WorkloadFixture(ExperimentConfig cfg, WorkloadParams params = {})
      : stack(params) {
    cfg.stop_at_convergence = false;
    cfg.node_extension = stack.node_extension();
    exp = std::make_unique<BootstrapExperiment>(cfg);
    stack.log().bind_registry(exp->engine().metrics());
    if (params.retry || params.hedge_delay > 0 || params.cast_retries > 0) {
      stack.log().bind_retry_registry(exp->engine().metrics());
    }
  }

  Engine& engine() { return exp->engine(); }

  /// Issues one request from `origin` in barrier context; returns the id.
  std::uint64_t issue(Address origin, KvOp op, NodeId key) {
    std::uint64_t id = 0;
    engine().schedule_call(0, [&, origin, op, key](Engine& e) {
      Context ctx(e, origin, stack.slot());
      id = stack.service(e, origin).begin_kv(ctx, op, key, 32);
    });
    engine().run_until(engine().now() + 1);
    return id;
  }

  /// Runs until every issued request resolved (answer or timeout).
  void quiesce() { engine().run_until(engine().now() + 3 * kDelta); }

  WorkloadStack stack;
  std::unique_ptr<BootstrapExperiment> exp;
};

ExperimentConfig small_config(std::size_t n = 64, std::uint64_t seed = 7) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.max_cycles = 12;
  return cfg;
}

TEST(Workload, PutThenGetFindsKeyAtOracleOwner) {
  WorkloadFixture fix(small_config());
  fix.exp->run();  // converge first
  const NodeId key = 0xABCDEF0123456789ull;

  EXPECT_NE(fix.issue(5, KvOp::Put, key), 0u);
  fix.quiesce();
  WorkloadSummary s = fix.stack.log().summary();
  EXPECT_EQ(s.put_ok, 1u);
  EXPECT_EQ(s.timeouts, 0u);

  // The put landed exactly at the oracle's owner of the key.
  const ConvergenceOracle oracle(fix.engine(), fix.exp->config().bootstrap,
                                 fix.exp->bootstrap_slot());
  const Address root = oracle.owner_of(key).addr;
  EXPECT_TRUE(fix.stack.service(fix.engine(), root).has_key(key));

  // A get from a different node routes to the same root and finds it.
  EXPECT_NE(fix.issue(41, KvOp::Get, key), 0u);
  fix.quiesce();
  s = fix.stack.log().summary();
  EXPECT_EQ(s.get_ok, 1u);
  EXPECT_EQ(s.get_found, 1u);
  EXPECT_EQ(s.get_miss, 0u);
  EXPECT_EQ(s.unroutable, 0u);
}

TEST(Workload, GetForUnknownKeyIsAnsweredAsMiss) {
  WorkloadFixture fix(small_config());
  fix.exp->run();
  EXPECT_NE(fix.issue(3, KvOp::Get, 0x1234ull), 0u);
  fix.quiesce();
  const WorkloadSummary s = fix.stack.log().summary();
  EXPECT_EQ(s.get_ok, 1u);
  EXPECT_EQ(s.get_found, 0u);
  EXPECT_EQ(s.get_miss, 1u);
  EXPECT_EQ(s.timeouts, 0u);
}

TEST(Workload, PutPlacesReplicasOnLeafSetNeighbours) {
  WorkloadFixture fix(small_config());
  fix.exp->run();
  const NodeId key = 0x5555AAAA5555AAAAull;
  fix.issue(0, KvOp::Put, key);
  fix.quiesce();

  // Root copy + `replicas` copies on its closest alive leaf-set neighbours.
  const ConvergenceOracle oracle(fix.engine(), fix.exp->config().bootstrap,
                                 fix.exp->bootstrap_slot());
  const Address root = oracle.owner_of(key).addr;
  std::size_t copies = 0;
  for (Address a = 0; a < fix.engine().node_count(); ++a) {
    if (fix.stack.service(fix.engine(), a).has_key(key)) ++copies;
  }
  EXPECT_EQ(copies, 1 + fix.stack.params().replicas);
  const auto& leaf =
      fix.exp->bootstrap_slot().of(fix.engine(), root).leaf_set();
  std::size_t on_leaf = 0;
  for (const NodeDescriptor& d : leaf.sorted_by_ring_distance()) {
    if (d.addr != root && fix.stack.service(fix.engine(), d.addr).has_key(key)) {
      ++on_leaf;
    }
  }
  EXPECT_EQ(on_leaf, fix.stack.params().replicas);
}

TEST(Workload, RequestBeforeBootstrapActivationIsUnroutable) {
  WorkloadFixture fix(small_config());
  // No run(): the engine sits at t = 0, inside the Newscast warmup, where
  // the bootstrap protocol is not active on any node yet.
  EXPECT_EQ(fix.issue(1, KvOp::Put, 0x42ull), 0u);
  const WorkloadSummary s = fix.stack.log().summary();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.unroutable, 1u);
  EXPECT_EQ(s.answered(), 0u);
}

TEST(Workload, RequestsAcrossPartitionCutTimeOut) {
  ExperimentConfig cfg = small_config();
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 5;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  PartitionSpec cut;
  // Cut lasts to the end of the run: converged tables, then a hard split.
  cut.window = {epoch + 8 * delta, epoch + 64 * delta};
  cut.kind = PartitionSpec::Kind::Cut;
  cut.value = static_cast<std::uint32_t>(cfg.n / 2);
  cfg.fault_plan.partitions.push_back(cut);

  WorkloadFixture fix(cfg);
  WorkloadDriver driver(fix.stack, [&] {
    DriverConfig dc;
    dc.from = epoch + 9 * delta;  // mid-cut
    dc.to = epoch + 11 * delta;
    dc.batch = 8;
    dc.seed = 3;
    return dc;
  }());
  driver.start(fix.engine());
  fix.exp->run();
  fix.quiesce();
  const WorkloadSummary s = fix.stack.log().summary();
  ASSERT_GT(s.issued(), 0u);
  // Requests whose key is owned across the cut die at the boundary and time
  // out at the origin; same-side requests still complete.
  EXPECT_GT(s.timeouts, 0u);
  EXPECT_GT(s.answered(), 0u);
  EXPECT_EQ(s.issued(), s.answered() + s.timeouts + s.unroutable);
}

TEST(Workload, BroadcastReachesEveryLiveNodeExactlyOnceAfterPartitionHeal) {
  ExperimentConfig cfg = small_config();
  cfg.max_cycles = 48;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 5;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  PartitionSpec cut;
  // A short cut: long enough for evictions to bite, short enough that the
  // halves keep cross links and genuinely re-merge after the heal. (A cut
  // held until eviction completes splits Newscast views too and the halves
  // never rejoin — at this scale that is permanent, not slow.)
  cut.window = {epoch + 4 * delta, epoch + 8 * delta};
  cut.kind = PartitionSpec::Kind::Cut;
  cut.value = static_cast<std::uint32_t>(cfg.n / 2);
  cfg.fault_plan.partitions.push_back(cut);

  WorkloadFixture fix(cfg);
  WorkloadDriver driver(fix.stack, DriverConfig{});
  const auto result = fix.exp->run();
  // The overlay must have re-converged after the heal — full coverage is
  // only structurally guaranteed over perfect tables.
  ASSERT_EQ(result.final_metrics.missing_leaf_fraction(), 0.0);
  ASSERT_EQ(result.final_metrics.missing_prefix_fraction(), 0.0);

  driver.schedule_cast(fix.engine(), fix.engine().now());
  driver.schedule_cast(fix.engine(), fix.engine().now() + delta);
  fix.quiesce();
  const auto cov = driver.verify_casts(fix.engine());
  EXPECT_EQ(cov.casts, 2u);
  EXPECT_EQ(cov.expected, 2 * cfg.n);
  EXPECT_EQ(cov.reached, cov.expected);  // every live node got a copy...
  EXPECT_EQ(cov.duplicates, 0u);         // ...exactly once
  const WorkloadSummary s = fix.stack.log().summary();
  EXPECT_EQ(s.cast_delivered, 2 * cfg.n);
  EXPECT_EQ(s.cast_duplicates, 0u);
}

/// Drives the bench's churn-flavoured scenario at shard count K and returns
/// the deterministic aggregates.
std::pair<WorkloadSummary, WorkloadDriver::CastCoverage> run_at_shards(std::size_t k) {
  ExperimentConfig cfg = small_config(128, 11);
  cfg.shards = k;
  cfg.max_cycles = 20;
  cfg.churn_fail_rate = 0.02;
  cfg.churn_join_rate = 0.02;
  cfg.bootstrap.evict_unresponsive = true;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;

  WorkloadFixture fix(cfg);
  WorkloadDriver driver(fix.stack, [&] {
    DriverConfig dc;
    dc.from = epoch + 2 * delta;
    dc.to = epoch + 14 * delta;
    dc.batch = 4;
    dc.seed = 9;
    return dc;
  }());
  driver.start(fix.engine());
  driver.schedule_cast(fix.engine(), epoch + 15 * delta);
  fix.exp->run();
  fix.quiesce();
  return {fix.stack.log().summary(), driver.verify_casts(fix.engine())};
}

TEST(Workload, SummariesAreIdenticalAcrossShardCounts) {
  const auto [base, base_cov] = run_at_shards(1);
  ASSERT_GT(base.issued(), 0u);
  ASSERT_GT(base.answered(), 0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto [s, cov] = run_at_shards(k);
    EXPECT_EQ(s.puts, base.puts) << "K=" << k;
    EXPECT_EQ(s.gets, base.gets) << "K=" << k;
    EXPECT_EQ(s.put_ok, base.put_ok) << "K=" << k;
    EXPECT_EQ(s.get_ok, base.get_ok) << "K=" << k;
    EXPECT_EQ(s.get_found, base.get_found) << "K=" << k;
    EXPECT_EQ(s.get_miss, base.get_miss) << "K=" << k;
    EXPECT_EQ(s.timeouts, base.timeouts) << "K=" << k;
    EXPECT_EQ(s.unroutable, base.unroutable) << "K=" << k;
    EXPECT_EQ(s.rtt_count, base.rtt_count) << "K=" << k;
    // Bit-exact, not approximate: identical trajectories produce identical
    // histogram contents, hence identical derived doubles.
    EXPECT_EQ(s.rtt_mean, base.rtt_mean) << "K=" << k;
    EXPECT_EQ(s.rtt_max, base.rtt_max) << "K=" << k;
    EXPECT_EQ(s.rtt_p50, base.rtt_p50) << "K=" << k;
    EXPECT_EQ(s.rtt_p95, base.rtt_p95) << "K=" << k;
    EXPECT_EQ(s.rtt_p99, base.rtt_p99) << "K=" << k;
    EXPECT_EQ(s.hops_mean, base.hops_mean) << "K=" << k;
    EXPECT_EQ(s.hops_max, base.hops_max) << "K=" << k;
    EXPECT_EQ(s.casts, base.casts) << "K=" << k;
    EXPECT_EQ(s.cast_delivered, base.cast_delivered) << "K=" << k;
    EXPECT_EQ(s.cast_duplicates, base.cast_duplicates) << "K=" << k;
    EXPECT_EQ(s.cast_forwards, base.cast_forwards) << "K=" << k;
    EXPECT_EQ(cov.expected, base_cov.expected) << "K=" << k;
    EXPECT_EQ(cov.reached, base_cov.reached) << "K=" << k;
    EXPECT_EQ(cov.duplicates, base_cov.duplicates) << "K=" << k;
  }
}

// --- retry / hedging extension ---------------------------------------------

TEST(WorkloadRetry, RetriesRecoverRequestsAcrossTransientCut) {
  // A 2-cycle hard cut opens mid-issue: without retries the cross-cut
  // requests would die at the boundary and time out (the test above proves
  // exactly that for a permanent cut); with the retry layer every request is
  // retransmitted past the heal and completes.
  ExperimentConfig cfg = small_config();
  cfg.max_cycles = 24;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  PartitionSpec cut;
  cut.window = {epoch + 8 * delta, epoch + 10 * delta};
  cut.kind = PartitionSpec::Kind::Cut;
  cut.value = static_cast<std::uint32_t>(cfg.n / 2);
  cfg.fault_plan.partitions.push_back(cut);

  WorkloadParams wp;
  wp.retry = true;
  wp.retry_budget = 5;
  wp.retry_backoff = 1.5;
  WorkloadFixture fix(cfg, wp);
  WorkloadDriver driver(fix.stack, [&] {
    DriverConfig dc;
    dc.from = epoch + 8 * delta + 100;  // inside the cut
    dc.to = epoch + 9 * delta;
    dc.batch = 8;
    dc.seed = 3;
    return dc;
  }());
  driver.start(fix.engine());
  fix.exp->run();
  fix.engine().run_until(fix.engine().now() + 10 * delta);  // retry tail
  const WorkloadSummary s = fix.stack.log().summary();
  ASSERT_GT(s.issued(), 0u);
  EXPECT_GT(s.kv_retries, 0u);  // the cut actually forced retransmissions
  EXPECT_EQ(s.timeouts, 0u);    // ...and every one of them recovered
  EXPECT_EQ(s.answered(), s.issued());
  // Nothing left half-resolved on any node.
  for (Address a = 0; a < cfg.n; ++a) {
    EXPECT_EQ(fix.stack.service(fix.engine(), a).pending_requests(), 0u);
  }
}

TEST(WorkloadRetry, HedgedGetsFireUnderLatencySpike) {
  // A latency spike slows every answer past the hedge delay: hedge copies
  // go out over alternate first hops, and every get still completes.
  ExperimentConfig cfg = small_config();
  cfg.max_cycles = 20;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  LatencySpec spike;
  spike.window = {epoch + 8 * delta, epoch + 12 * delta};
  spike.mode = LatencySpec::Mode::Spike;
  spike.add = delta / 2;
  cfg.fault_plan.latency.push_back(spike);

  WorkloadParams wp;
  wp.hedge_delay = delta / 4;
  WorkloadFixture fix(cfg, wp);
  WorkloadDriver driver(fix.stack, [&] {
    DriverConfig dc;
    dc.from = epoch + 8 * delta + 50;
    dc.to = epoch + 10 * delta;
    dc.batch = 8;
    dc.put_fraction = 0.0;  // gets only: every request can hedge
    dc.seed = 5;
    return dc;
  }());
  driver.start(fix.engine());
  fix.exp->run();
  fix.engine().run_until(fix.engine().now() + 6 * delta);
  const WorkloadSummary s = fix.stack.log().summary();
  ASSERT_GT(s.issued(), 0u);
  EXPECT_GT(s.hedges_sent, 0u);
  EXPECT_EQ(s.answered(), s.issued());
  EXPECT_EQ(s.timeouts, 0u);
}

TEST(WorkloadRetry, CastRedelegationSurvivesForwardLoss) {
  // A lossy window during a broadcast: with the per-cell ack handshake on,
  // silent delegates are re-delegated to alternates of the same cell and
  // the cast still reaches every node.
  ExperimentConfig cfg = small_config(96, 17);
  cfg.max_cycles = 24;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  LinkLossSpec loss;
  loss.window = {epoch + 12 * delta, epoch + 16 * delta};
  loss.drop_probability = 0.25;
  cfg.fault_plan.link_loss.push_back(loss);

  WorkloadParams wp;
  wp.cast_retries = 4;
  WorkloadFixture fix(cfg, wp);
  WorkloadDriver driver(fix.stack, DriverConfig{});
  // Mid-loss, close enough to the heal that the bounded retry tail (five
  // transmissions, ack timeout delta/2) reaches past the window end.
  driver.schedule_cast(fix.engine(), epoch + 14 * delta);
  fix.exp->run();
  fix.engine().run_until(fix.engine().now() + 6 * delta);
  const WorkloadSummary s = fix.stack.log().summary();
  EXPECT_GT(s.cast_redelegations, 0u);  // losses actually hit forwards
  const auto cov = driver.verify_casts(fix.engine());
  EXPECT_EQ(cov.casts, 1u);
  // Retried delegation recovers full coverage; a lost ack may produce a
  // duplicate delivery (absorbed and counted, never double-processed).
  EXPECT_EQ(cov.reached, cov.expected);
}

/// The churn scenario of run_at_shards with the whole robustness layer on
/// (adaptive timeouts, retries, hedging, cast acks, bootstrap exchange
/// retries + suspicion) plus loss and latency windows to exercise it.
std::pair<WorkloadSummary, WorkloadDriver::CastCoverage> run_retry_at_shards(
    std::size_t k) {
  ExperimentConfig cfg = small_config(96, 13);
  cfg.shards = k;
  cfg.max_cycles = 22;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 5;
  cfg.bootstrap.retry_exchanges = true;
  cfg.bootstrap.exchange_retry_budget = 2;
  cfg.bootstrap.adaptive_timeout = true;
  cfg.bootstrap.rtt_max_timeout = 2 * kDelta;
  cfg.bootstrap.suspicion_threshold = 3;
  const SimTime delta = cfg.bootstrap.delta;
  const SimTime epoch = cfg.warmup_cycles * delta;
  LinkLossSpec loss;
  loss.window = {epoch + 4 * delta, epoch + 10 * delta};
  loss.drop_probability = 0.20;
  cfg.fault_plan.link_loss.push_back(loss);
  LatencySpec spike;
  spike.window = {epoch + 6 * delta, epoch + 9 * delta};
  spike.mode = LatencySpec::Mode::Spike;
  spike.add = delta / 3;
  cfg.fault_plan.latency.push_back(spike);

  WorkloadParams wp;
  wp.retry = true;
  wp.retry_budget = 3;
  wp.adaptive_timeout = true;
  wp.rtt_max_timeout = 2 * kDelta;
  wp.hedge_delay = delta / 2;
  wp.cast_retries = 1;
  WorkloadFixture fix(cfg, wp);
  WorkloadDriver driver(fix.stack, [&] {
    DriverConfig dc;
    dc.from = epoch + 3 * delta;
    dc.to = epoch + 12 * delta;
    dc.batch = 4;
    dc.seed = 9;
    return dc;
  }());
  driver.start(fix.engine());
  driver.schedule_cast(fix.engine(), epoch + 8 * delta);  // mid-loss
  fix.exp->run();
  fix.engine().run_until(fix.engine().now() + 8 * delta);
  return {fix.stack.log().summary(), driver.verify_casts(fix.engine())};
}

TEST(WorkloadRetry, SummariesWithRetriesAndChaosAreIdenticalAcrossShardCounts) {
  const auto [base, base_cov] = run_retry_at_shards(1);
  ASSERT_GT(base.issued(), 0u);
  ASSERT_GT(base.kv_retries + base.hedges_sent, 0u);  // the layer actually ran
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto [s, cov] = run_retry_at_shards(k);
    EXPECT_EQ(s.puts, base.puts) << "K=" << k;
    EXPECT_EQ(s.gets, base.gets) << "K=" << k;
    EXPECT_EQ(s.put_ok, base.put_ok) << "K=" << k;
    EXPECT_EQ(s.get_ok, base.get_ok) << "K=" << k;
    EXPECT_EQ(s.get_found, base.get_found) << "K=" << k;
    EXPECT_EQ(s.get_miss, base.get_miss) << "K=" << k;
    EXPECT_EQ(s.timeouts, base.timeouts) << "K=" << k;
    EXPECT_EQ(s.unroutable, base.unroutable) << "K=" << k;
    // The new robustness counters are part of the byte-identity contract.
    EXPECT_EQ(s.kv_retries, base.kv_retries) << "K=" << k;
    EXPECT_EQ(s.hedges_sent, base.hedges_sent) << "K=" << k;
    EXPECT_EQ(s.hedge_wins, base.hedge_wins) << "K=" << k;
    EXPECT_EQ(s.cast_redelegations, base.cast_redelegations) << "K=" << k;
    EXPECT_EQ(s.rtt_samples, base.rtt_samples) << "K=" << k;
    EXPECT_EQ(s.rtt_count, base.rtt_count) << "K=" << k;
    EXPECT_EQ(s.rtt_mean, base.rtt_mean) << "K=" << k;
    EXPECT_EQ(s.rtt_p99, base.rtt_p99) << "K=" << k;
    EXPECT_EQ(s.casts, base.casts) << "K=" << k;
    EXPECT_EQ(s.cast_delivered, base.cast_delivered) << "K=" << k;
    EXPECT_EQ(s.cast_duplicates, base.cast_duplicates) << "K=" << k;
    EXPECT_EQ(s.cast_forwards, base.cast_forwards) << "K=" << k;
    EXPECT_EQ(cov.expected, base_cov.expected) << "K=" << k;
    EXPECT_EQ(cov.reached, base_cov.reached) << "K=" << k;
    EXPECT_EQ(cov.duplicates, base_cov.duplicates) << "K=" << k;
  }
}

TEST(WorkloadParamsDeathTest, StackRejectsIncoherentRetryConfigs) {
  const auto build = [](WorkloadParams p) { WorkloadStack stack(p); };
  {
    WorkloadParams p;
    p.retry = true;
    p.retry_budget = 0;
    EXPECT_EXIT(build(p), ::testing::ExitedWithCode(2), "retry_budget");
  }
  {
    WorkloadParams p;
    p.cast_retries = -1;
    EXPECT_EXIT(build(p), ::testing::ExitedWithCode(2), "cast_retries");
  }
  {
    WorkloadParams p;
    p.adaptive_timeout = true;
    p.rtt_min_timeout = 5000;
    p.rtt_max_timeout = 100;
    EXPECT_EXIT(build(p), ::testing::ExitedWithCode(2), "rtt_min_timeout");
  }
  {
    WorkloadParams p;
    p.timeout = 0;
    EXPECT_EXIT(build(p), ::testing::ExitedWithCode(2), "timeout");
  }
}

}  // namespace
